//! Parity between the declarative scenario files and the builtin
//! constructors: a spec loaded from `scenarios/*.toml` must reproduce the
//! constructor's scenario exactly, and running both through the same seed
//! must yield identical outcomes — the file is the constructor, written
//! down.

use std::fmt::Write as _;
use std::path::PathBuf;

use evolve_core::{arbiter_from_spec, ExperimentRunner, ManagerKind, RunConfig, RunOutcome};
use evolve_sim::NodeShape;
use evolve_types::SimDuration;
use evolve_workload::{Scenario, ScenarioSpec, BUILTIN_NAMES, DEFAULT_NODE_CAPACITY};

fn scenario_file(name: &str) -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../scenarios"))
        .join(format!("{name}.toml"))
}

/// Everything a short run measures, as a comparable digest (bit-exact
/// floats via their IEEE-754 patterns).
fn digest(outcome: &RunOutcome) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "scenario {}", outcome.scenario);
    let _ = writeln!(out, "end_time {:016x}", outcome.end_time.as_secs_f64().to_bits());
    let _ = writeln!(out, "bindings {}", outcome.bindings);
    let _ = writeln!(out, "preemptions {}", outcome.preemptions);
    for app in &outcome.apps {
        let _ = writeln!(
            out,
            "app {} windows={} violations={} severity={:016x} completions={} timeouts={}",
            app.name,
            app.windows,
            app.violations,
            app.mean_severity.to_bits(),
            app.completions,
            app.timeouts,
        );
    }
    for job in &outcome.jobs {
        let _ = writeln!(out, "job {} met={}", job.job.raw(), job.met_deadline());
    }
    out
}

/// The file spec equals the builtin spec for every registered name (the
/// byte-level pinning lives in `evolve-workload`'s spec tests; this
/// checks the files as `evolve-core` consumers see them).
#[test]
fn every_builtin_has_a_matching_scenario_file() {
    for name in BUILTIN_NAMES {
        let builtin = ScenarioSpec::builtin(name).expect("builtin");
        let parsed = ScenarioSpec::from_file(scenario_file(name))
            .unwrap_or_else(|err| panic!("{name}: {err}"));
        assert_eq!(parsed, builtin, "{name}: file spec != builtin spec");
    }
}

/// Same seed, same outcome: running the file-loaded spec through
/// `RunConfig::from_spec` matches the constructor path bit for bit on a
/// shortened horizon, for a representative subset (plain mix, arbitrated
/// overload, single service).
#[test]
fn file_spec_runs_reproduce_the_constructor_runs() {
    for (name, constructor) in [
        ("headline", Scenario::headline(1.0)),
        ("single_diurnal", Scenario::single_diurnal()),
        ("overload", Scenario::overload(1.0)),
    ] {
        let spec = ScenarioSpec::from_file(scenario_file(name))
            .unwrap_or_else(|err| panic!("{name}: {err}"));
        let horizon = SimDuration::from_mins(2);

        let mut from_file = RunConfig::from_spec(&spec, ManagerKind::Evolve).seed(42).build();
        from_file.scenario.horizon = horizon;

        // The constructor path, configured the way the bench binaries
        // did it by hand before `from_spec` existed.
        let mut builder =
            RunConfig::builder(constructor, ManagerKind::Evolve).seed(42).nodes(spec.cluster.nodes);
        if let Some(arb) = &spec.arbiter {
            builder = builder.arbiter(arbiter_from_spec(arb));
        }
        let mut by_hand = builder.build();
        by_hand.scenario.horizon = horizon;

        let a = ExperimentRunner::new(from_file).run();
        let b = ExperimentRunner::new(by_hand).run();
        assert_eq!(digest(&a), digest(&b), "{name}: file spec and constructor diverged");
    }
}

/// `scenario_named` resolves builtins and applies the spec's cluster
/// shape and arbiter to the builder.
#[test]
fn scenario_named_applies_cluster_and_arbiter() {
    let config = RunConfig::builder(Scenario::single_diurnal(), ManagerKind::Evolve)
        .scenario_named("overload")
        .expect("builtin resolves")
        .build();
    assert_eq!(config.scenario.name, "overload-1.00");
    assert_eq!(config.nodes, 4);
    assert!(config.arbiter.is_some(), "overload spec carries the arbiter");

    let err = RunConfig::builder(Scenario::single_diurnal(), ManagerKind::Evolve)
        .scenario_named("ghost")
        .unwrap_err();
    assert!(err.to_string().contains("ghost"));
}

/// `scenario_file` loads through the same validated path as the suite.
#[test]
fn scenario_file_loads_checked_in_specs() {
    let config = RunConfig::builder(Scenario::single_diurnal(), ManagerKind::Evolve)
        .scenario_file(scenario_file("interference"))
        .expect("checked-in file loads")
        .build();
    assert_eq!(config.nodes, 10);
    assert!(config.scenario.name.starts_with("interference"));
}

/// The spec layer's default node capacity is the simulator's: a spec
/// without `[cluster] node_capacity` is validated against exactly the
/// node the runner will build.
#[test]
fn spec_default_capacity_matches_the_simulators() {
    assert_eq!(DEFAULT_NODE_CAPACITY, NodeShape::default().capacity);
}
