//! End-to-end proof that the chaos harness catches a real atomicity bug
//! and shrinks its fault schedule to a minimal reproducer.
//!
//! The seeded bug: `EVOLVE_CHAOS_GANG_NO_ROLLBACK` makes the scheduler
//! commit a partially placed gang instead of rolling back (see
//! `SchedulerFramework::place_gang`). This file lives alone in its own
//! test binary because the flag is read from the process environment at
//! scheduler construction; no other test must share the process.

use evolve_core::{ExperimentRunner, ManagerKind, RunConfig};
use evolve_sim::chaos::{plan_from_events, shrink_events};
use evolve_sim::{FaultEvent, FaultKind, OracleReport, Reproducer};
use evolve_types::{SimDuration, SimTime};
use evolve_workload::Scenario;

fn run_case(seed: u64, events: &[FaultEvent]) -> OracleReport {
    let mut scenario = Scenario::interference();
    scenario.horizon = SimDuration::from_secs(150);
    let cfg = RunConfig::builder(scenario, ManagerKind::Evolve)
        .nodes(8)
        .seed(seed)
        .record_series(false)
        .faults(plan_from_events(events))
        .oracle(true)
        .build();
    ExperimentRunner::new(cfg).run().oracle.expect("oracle was enabled")
}

/// The schedule the fuzzer would hand to the shrinker: one control stall
/// that actually provokes the bug (the backlog after the stall forces a
/// gang through the broken partial-placement path) plus three decoy
/// faults landing *after* the violation, which the shrinker must strip.
fn failing_schedule() -> Vec<FaultEvent> {
    vec![
        FaultEvent {
            at: SimTime::from_secs(67),
            kind: FaultKind::ControlStall { duration: SimDuration::from_secs(42) },
        },
        FaultEvent {
            at: SimTime::from_secs(140),
            kind: FaultKind::ScrapeBlackout { app: None, duration: SimDuration::from_secs(8) },
        },
        FaultEvent {
            at: SimTime::from_secs(142),
            kind: FaultKind::MetricNoise {
                app: None,
                duration: SimDuration::from_secs(6),
                cv: 0.2,
            },
        },
        FaultEvent {
            at: SimTime::from_secs(145),
            kind: FaultKind::ActuationDrop { duration: SimDuration::from_secs(4) },
        },
    ]
}

#[test]
fn seeded_gang_bug_is_caught_and_shrunk_to_a_tiny_reproducer() {
    std::env::set_var("EVOLVE_CHAOS_GANG_NO_ROLLBACK", "1");
    let seed = 95;
    let events = failing_schedule();

    // 1. The oracle catches the seeded bug as a gang-atomicity violation.
    let report = run_case(seed, &events);
    assert!(!report.is_clean(), "seeded bug not caught");
    assert!(
        report.failed_checks().iter().any(|c| c == "gang_atomicity"),
        "expected gang_atomicity, got {:?}",
        report.failed_checks()
    );

    // 2. ddmin shrinks the four-event schedule to at most three events
    //    (here: exactly the control stall).
    let minimal = shrink_events(&events, |cand| !run_case(seed, cand).is_clean());
    assert!(minimal.len() <= 3, "shrinker left {} events: {minimal:?}", minimal.len());
    assert!(
        minimal.iter().any(|ev| matches!(ev.kind, FaultKind::ControlStall { .. })),
        "the culprit stall was shrunk away: {minimal:?}"
    );

    // 3. The minimized schedule still reproduces, and survives the JSON
    //    reproducer round trip byte-for-byte.
    let shrunk_report = run_case(seed, &minimal);
    assert!(!shrunk_report.is_clean());
    let repro = Reproducer {
        seed,
        profile: "interference".to_string(),
        horizon: SimDuration::from_secs(150),
        nodes: 8,
        events: minimal,
        violation: shrunk_report.failed_checks().first().cloned().unwrap_or_default(),
    };
    let json = repro.to_json();
    let back = Reproducer::from_json(&json).expect("reproducer round trip");
    assert_eq!(back, repro);
    let replayed = run_case(back.seed, &back.events);
    assert!(!replayed.is_clean(), "reproducer did not replay the violation");
}
