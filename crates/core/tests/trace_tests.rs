//! Integration tests for the decision-trace subsystem: same-seed JSONL
//! determinism, decision-chain reconstruction and the guarantee that
//! tracing observes without perturbing results.

use std::path::{Path, PathBuf};

use evolve_core::{ExperimentRunner, ManagerKind, RunConfig};
use evolve_telemetry::trace::{SchedOutcome, SpanKind, TraceConfig};
use evolve_types::SimDuration;
use evolve_workload::Scenario;

fn tmp(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name)
}

/// The headline mix at a short horizon: enough load to exercise control
/// decisions, scale-out, gang scheduling and binding.
fn traced_config(dump: &Path) -> RunConfig {
    let mut scenario = Scenario::headline(0.5);
    scenario.horizon = SimDuration::from_mins(2);
    RunConfig::builder(scenario, ManagerKind::Evolve)
        .nodes(8)
        .seed(42)
        .trace(TraceConfig::default().dump_to(dump))
        .build()
}

#[test]
fn same_seed_trace_dumps_are_byte_identical() {
    let a = tmp("trace_same_seed_a.jsonl");
    let b = tmp("trace_same_seed_b.jsonl");
    let _ = ExperimentRunner::new(traced_config(&a)).run();
    let _ = ExperimentRunner::new(traced_config(&b)).run();
    let dump_a = std::fs::read(&a).expect("first dump written");
    let dump_b = std::fs::read(&b).expect("second dump written");
    assert!(!dump_a.is_empty(), "trace dump is empty");
    assert_eq!(dump_a, dump_b, "same-seed trace dumps are not byte-identical");
}

#[test]
fn trace_reconstructs_the_decision_chain() {
    let dump = tmp("trace_chain.jsonl");
    let outcome = ExperimentRunner::new(traced_config(&dump)).run();
    let ring = &outcome.trace;
    assert!(!ring.is_empty(), "ring captured nothing");

    // Control side: per-app decisions with full controller internals.
    let explained = ring.control().filter(|c| c.explain.is_some()).count();
    assert!(explained > 0, "no control record carries an explain block");
    let app_count = outcome.apps.len() as u32;
    for c in ring.control() {
        assert!(c.app.raw() < app_count, "control trace names unknown app {}", c.app.raw());
        if let Some(e) = &c.explain {
            assert!(e.error.is_finite(), "control error is not finite");
            for t in &e.pid {
                assert!(t.output.is_finite(), "PID output is not finite");
            }
        }
    }
    // Ticks are monotone: the ring preserves decision order.
    let ticks: Vec<u64> = ring.control().map(|c| c.tick).collect();
    assert!(ticks.windows(2).all(|w| w[0] <= w[1]), "control ticks out of order");

    // Scheduler side: at least one successful binding with scoring
    // detail, so a violation can be chased from controller decision to
    // placement.
    let bound = ring.sched().filter(|s| matches!(s.outcome, SchedOutcome::Bound { .. })).count();
    assert!(bound > 0, "no pod binding was traced");
    let scored = ring.sched().any(|s| {
        matches!(s.outcome, SchedOutcome::Bound { score: Some(_), .. }) && !s.scores.is_empty()
    });
    assert!(scored, "no traced binding carries per-plugin scores");

    // Lifecycle spans cover all three runner phases.
    for kind in [SpanKind::Control, SpanKind::Sched, SpanKind::Record] {
        assert!(ring.spans().any(|s| s.kind == kind), "no {} span was traced", kind.as_str());
    }
}

#[test]
fn tracing_is_observational_only() {
    // Identical config with tracing disabled vs enabled (with dump):
    // every result the run reports must be bit-identical.
    let dump = tmp("trace_observe.jsonl");
    let mut scenario = Scenario::headline(0.5);
    scenario.horizon = SimDuration::from_mins(2);
    let base = RunConfig::builder(scenario, ManagerKind::Evolve).nodes(8).seed(42);
    let disabled = base.clone().trace(TraceConfig::disabled()).build();
    let enabled = base.trace(TraceConfig::default().dump_to(&dump)).build();
    let off = ExperimentRunner::new(disabled).run();
    let on = ExperimentRunner::new(enabled).run();

    assert_eq!(off.end_time, on.end_time);
    assert_eq!(off.bindings, on.bindings);
    assert_eq!(off.preemptions, on.preemptions);
    assert_eq!(off.total_windows(), on.total_windows());
    assert_eq!(off.total_violations(), on.total_violations());
    assert_eq!(
        off.utilization.mean_allocated().to_bits(),
        on.utilization.mean_allocated().to_bits(),
        "tracing perturbed utilization accounting"
    );
    assert!(off.trace.is_empty(), "disabled ring retained events");
    assert!(!on.trace.is_empty(), "enabled ring captured nothing");
}
