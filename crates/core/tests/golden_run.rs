//! Golden same-seed regression test: pins the complete metric output of a
//! standard scenario as a bit-exact fixture so performance work on the
//! hot paths (metric interning, incremental quantiles, scratch-buffer
//! reuse) cannot silently change results.
//!
//! The fixture stores every recorded time series sample as the raw IEEE-754
//! bit pattern of its `(seconds, value)` pair, plus the headline outcome
//! scalars. Any behavioural drift — an extra tick, a reordered sample, a
//! last-ulp float difference — fails the comparison.
//!
//! Regenerate (after an *intentional* behaviour change only) with:
//!
//! ```text
//! EVOLVE_BLESS=1 cargo test -p evolve-core --test golden_run
//! ```

use std::fmt::Write as _;
use std::path::PathBuf;

use evolve_core::{ExperimentRunner, ManagerKind, RunConfig, RunOutcome};
use evolve_types::SimDuration;
use evolve_workload::Scenario;

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/golden_headline.txt")
}

/// The standard scenario at a short horizon: the full headline mix
/// (6 services with heterogeneous bottlenecks, batch ETL, an HPC gang)
/// under the EVOLVE manager, long enough to exercise scale-out/in,
/// binding, preemption and the quantile paths.
fn golden_config() -> RunConfig {
    let mut scenario = Scenario::headline(0.5);
    scenario.horizon = SimDuration::from_mins(5);
    RunConfig::builder(scenario, ManagerKind::Evolve).nodes(8).seed(42).build()
}

/// Serializes everything a run measured, bit-exactly. Floats are dumped
/// as hex bit patterns: two runs produce the same dump iff every sample
/// is the same `f64` down to the last bit.
fn golden_dump(outcome: &RunOutcome) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "manager {}", outcome.manager);
    let _ = writeln!(out, "scenario {}", outcome.scenario);
    let _ = writeln!(out, "end_time {:016x}", outcome.end_time.as_secs_f64().to_bits());
    // Deliberately NOT pinned: `outcome.events` (engine throughput
    // accounting — eliminating provably-stale timer events changes the
    // count without touching any metric) and wall-clock perf numbers.
    let _ = writeln!(out, "preemptions {}", outcome.preemptions);
    let _ = writeln!(out, "bindings {}", outcome.bindings);
    let _ = writeln!(out, "resize_failures {}", outcome.resize_failures);
    let _ = writeln!(out, "suppressed_actuations {}", outcome.suppressed_actuations);
    for app in &outcome.apps {
        let _ = writeln!(
            out,
            "app {} {} windows={} violations={} severity={:016x} completions={} timeouts={} oom={}",
            app.app.raw(),
            app.name,
            app.windows,
            app.violations,
            app.mean_severity.to_bits(),
            app.completions,
            app.timeouts,
            app.oom_kills,
        );
    }
    for job in &outcome.jobs {
        let _ = writeln!(
            out,
            "job {} app={} submitted={:016x} finished={} deadline_met={}",
            job.job.raw(),
            job.app.raw(),
            job.submitted.as_secs_f64().to_bits(),
            job.finished
                .map_or_else(|| "-".to_owned(), |f| format!("{:016x}", f.as_secs_f64().to_bits())),
            job.met_deadline(),
        );
    }
    let _ = writeln!(
        out,
        "utilization alloc={:016x} used={:016x}",
        outcome.utilization.mean_allocated().to_bits(),
        outcome.utilization.mean_used().to_bits(),
    );
    let names: Vec<String> = outcome.registry.series_names().map(str::to_owned).collect();
    for name in &names {
        let series = outcome.registry.series(name).expect("listed series exists");
        let _ = writeln!(out, "series {name} len={}", series.len());
        for (t, v) in series.to_points() {
            let _ = writeln!(out, "  {:016x} {:016x}", t.to_bits(), v.to_bits());
        }
    }
    let counters: Vec<String> = outcome.registry.counter_names().map(str::to_owned).collect();
    for name in &counters {
        let _ = writeln!(out, "counter {name} {}", outcome.registry.counter(name));
    }
    out
}

#[test]
fn golden_headline_metrics_are_bit_identical() {
    let outcome = ExperimentRunner::new(golden_config()).run();
    compare_to_fixture(&outcome, true);
}

/// Decision tracing is observational: running the *same* golden config
/// with the trace ring active and a JSONL dump enabled must leave every
/// pinned metric bit-identical to the fixture blessed without it.
#[test]
fn golden_headline_unchanged_by_trace_dump() {
    let dump_path = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("golden_trace_dump.jsonl");
    let mut config = golden_config();
    config.trace = evolve_telemetry::trace::TraceConfig::default().dump_to(&dump_path);
    let outcome = ExperimentRunner::new(config).run();
    assert!(!outcome.trace.is_empty(), "trace ring captured nothing");
    assert!(std::fs::metadata(&dump_path).is_ok_and(|m| m.len() > 0), "trace dump was not written");
    compare_to_fixture(&outcome, false);
}

/// The legacy-sampling escape hatch must reproduce the *pre-batched*
/// fixture bit-for-bit: `golden_headline_legacy.txt` is a frozen copy of
/// the fixture as blessed before the ziggurat/windowed sampler landed,
/// and is never re-blessed. If this fails, the legacy code path no longer
/// preserves the old RNG stream and the flag's contract is broken.
#[test]
fn legacy_sampling_reproduces_pre_batched_fixture() {
    let config = RunConfig::builder(golden_config().scenario, ManagerKind::Evolve)
        .nodes(8)
        .seed(42)
        .legacy_sampling(true)
        .build();
    let outcome = ExperimentRunner::new(config).run();
    let dump = golden_dump(&outcome);
    let path =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/golden_headline_legacy.txt");
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing frozen legacy fixture {} ({e})", path.display()));
    if dump != expected {
        let first_diff = dump
            .lines()
            .zip(expected.lines())
            .enumerate()
            .find(|(_, (got, want))| got != want)
            .map_or_else(
                || "<end of file>".to_owned(),
                |(i, (got, want))| format!("line {}: got `{got}`, want `{want}`", i + 1),
            );
        panic!("legacy sampling diverged from the frozen pre-batched fixture: {first_diff}");
    }
}

/// Compares a run against the blessed fixture; only the plain golden
/// test may (re)bless, so a drifting traced run can never overwrite the
/// reference it is checked against.
fn compare_to_fixture(outcome: &RunOutcome, may_bless: bool) {
    let dump = golden_dump(outcome);
    let path = fixture_path();
    let blessing = std::env::var("EVOLVE_BLESS").is_ok_and(|v| !v.is_empty() && v != "0");
    if blessing {
        if may_bless {
            std::fs::create_dir_all(path.parent().expect("fixture dir")).expect("mkdir fixtures");
            std::fs::write(&path, &dump).expect("write fixture");
        }
        // While re-blessing, secondary comparisons are skipped: test order
        // is arbitrary, so the fresh fixture may not exist yet.
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden fixture {} ({e}); regenerate with EVOLVE_BLESS=1", path.display())
    });
    if dump != expected {
        // Locate the first diverging line for a readable failure.
        let mut first_diff = String::from("<end of file>");
        let mut line_no = 0usize;
        for (i, (got, want)) in dump.lines().zip(expected.lines()).enumerate() {
            if got != want {
                first_diff = format!("line {}: got `{got}`, want `{want}`", i + 1);
                line_no = i + 1;
                break;
            }
        }
        panic!(
            "golden run diverged from fixture {} (dump {} lines, fixture {} lines; first diff at {line_no}): {first_diff}",
            path.display(),
            dump.lines().count(),
            expected.lines().count(),
        );
    }
}
