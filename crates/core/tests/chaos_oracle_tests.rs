//! Integration tests for the chaos harness wiring in the runner: the
//! oracle stays clean on healthy runs (faulted or not), actuation-path
//! faults are counted and traced, and the fault timeline lands in the
//! decision trace and the `faults/active` series.

use evolve_core::{ExperimentRunner, ManagerKind, RecoveryStrategy, RunConfig};
use evolve_sim::chaos::{plan_from_events, random_fault_events};
use evolve_sim::FaultPlan;
use evolve_types::{SimDuration, SimTime};
use evolve_workload::Scenario;

fn config(horizon_secs: u64, seed: u64) -> RunConfig {
    let mut cfg = RunConfig::builder(Scenario::single_diurnal(), ManagerKind::Evolve)
        .nodes(6)
        .seed(seed)
        .record_series(false)
        .oracle(true)
        .build();
    cfg.scenario.horizon = SimDuration::from_secs(horizon_secs);
    cfg
}

#[test]
fn oracle_clean_on_fault_free_run() {
    let outcome = ExperimentRunner::new(config(120, 42)).run();
    let report = outcome.oracle.expect("oracle was enabled");
    assert!(report.is_clean(), "violations: {:?}", report.violations);
    assert!(report.ticks_checked > 0);
    assert_eq!(outcome.dropped_actuations, 0);
    assert_eq!(outcome.delayed_actuations, 0);
    assert_eq!(outcome.partial_actuations, 0);
}

#[test]
fn oracle_is_none_when_disabled() {
    let mut cfg = config(60, 42);
    cfg.oracle = false;
    assert!(ExperimentRunner::new(cfg).run().oracle.is_none());
}

/// Seeded random fault schedules through the full runner must never trip
/// an invariant on main — the same property the CI chaos-smoke job
/// checks at a larger budget.
#[test]
fn oracle_clean_on_random_schedules() {
    for seed in [42u64, 43, 44] {
        let mut cfg = config(120, seed);
        cfg.faults = plan_from_events(&random_fault_events(seed, cfg.scenario.horizon, 6, 1, 4));
        let outcome = ExperimentRunner::new(cfg).run();
        let report = outcome.oracle.expect("oracle was enabled");
        assert!(report.is_clean(), "seed {seed} violations: {:?}", report.violations);
    }
}

/// While a controller crash is armed with Restore recovery, the oracle
/// also exercises checkpoint→restore equivalence every capture — and a
/// healthy controller must pass it.
#[test]
fn checkpoint_equivalence_clean_under_crash() {
    let mut cfg = config(180, 42);
    cfg.faults = FaultPlan::new().with_controller_crash(SimTime::from_secs(90));
    cfg.recovery = RecoveryStrategy::Restore;
    let outcome = ExperimentRunner::new(cfg).run();
    let report = outcome.oracle.expect("oracle was enabled");
    assert!(report.is_clean(), "violations: {:?}", report.violations);
    assert_eq!(outcome.controller_restarts, 1);
}

/// Actuation faults bite, are counted, and still leave every invariant
/// intact; the injected timeline is visible to `trace_explain` as Fault
/// trace events, and `faults/active` is recorded when series are on.
#[test]
fn actuation_faults_counted_traced_and_clean() {
    let mut cfg = config(180, 42);
    cfg.record_series = true;
    cfg.faults = FaultPlan::new()
        .with_actuation_drop(SimTime::from_secs(30), SimDuration::from_secs(30))
        .with_actuation_delay(
            SimTime::from_secs(80),
            SimDuration::from_secs(30),
            SimDuration::from_secs(15),
        )
        .with_actuation_partial(SimTime::from_secs(130), SimDuration::from_secs(30), 0.5);
    let outcome = ExperimentRunner::new(cfg).run();
    let report = outcome.oracle.as_ref().expect("oracle was enabled");
    assert!(report.is_clean(), "violations: {:?}", report.violations);
    assert!(
        outcome.dropped_actuations > 0,
        "the 30 s drop window must swallow at least one actuation"
    );
    assert!(outcome.delayed_actuations > 0);
    // Every scheduled fault appears in the decision trace.
    let fault_kinds: Vec<&str> = outcome.trace.faults().map(|f| f.kind).collect();
    assert!(fault_kinds.contains(&"actuation_drop"), "trace faults: {fault_kinds:?}");
    assert!(fault_kinds.contains(&"actuation_delay"));
    assert!(fault_kinds.contains(&"actuation_partial"));
    // The active-fault series exists and peaks at ≥1 inside the windows.
    let series = outcome.registry.series("faults/active").expect("faults/active series");
    let peak = series.to_points().iter().map(|&(_, v)| v).fold(0.0f64, f64::max);
    assert!(peak >= 1.0, "faults/active never rose above zero");
}

/// Fault-free runs must not gain the `faults/active` series — the golden
/// fixtures pin the exact series set of the headline run.
#[test]
fn fault_free_run_has_no_faults_series() {
    let mut cfg = config(60, 42);
    cfg.record_series = true;
    let outcome = ExperimentRunner::new(cfg).run();
    assert!(outcome.registry.series("faults/active").is_none());
    assert_eq!(outcome.trace.faults().count(), 0);
}
