//! Integration tests for the replication harness and control-loop
//! windowing: thread-count-independent aggregates, CI behaviour over
//! multiple seeds, and the final-partial-window regression.

use evolve_core::{ExperimentRunner, Harness, ManagerKind, RunConfig, Summary};
use evolve_sim::{FaultPlan, StochasticFaults};
use evolve_types::{NodeId, SimDuration, SimTime};
use evolve_workload::Scenario;

/// A cheap run: the single-service diurnal scenario cut down to a short
/// horizon on a small cluster, no series recording.
fn small_config(manager: ManagerKind, horizon_secs: u64) -> RunConfig {
    let mut config = RunConfig::builder(Scenario::single_diurnal(), manager)
        .nodes(4)
        .record_series(false)
        .build();
    config.scenario.horizon = SimDuration::from_secs(horizon_secs);
    config
}

fn with_faults(mut config: RunConfig, faults: FaultPlan) -> RunConfig {
    config.faults = faults;
    config
}

/// The control loop must simulate the trailing partial window when the
/// horizon is not a multiple of the control interval: 242 s at a 5 s
/// interval is 48 full windows plus one 2 s window.
#[test]
fn final_partial_window_is_simulated() {
    let config = small_config(ManagerKind::Evolve, 242);
    assert_eq!(config.control_interval, SimDuration::from_secs(5));
    let outcome = ExperimentRunner::new(config).run();
    assert_eq!(
        outcome.end_time,
        SimTime::ZERO + SimDuration::from_secs(242),
        "run must end exactly at the horizon, not at the last full window"
    );
    // ceil(242 / 5) = 49 control windows for the single service.
    assert_eq!(outcome.apps.len(), 1);
    assert_eq!(outcome.apps[0].windows, 49);
}

/// A horizon that divides evenly must not gain a spurious extra window.
#[test]
fn exact_horizon_window_count() {
    let outcome = ExperimentRunner::new(small_config(ManagerKind::Evolve, 240)).run();
    assert_eq!(outcome.end_time, SimTime::ZERO + SimDuration::from_secs(240));
    assert_eq!(outcome.apps[0].windows, 48);
}

fn summary_bits(s: &Summary) -> (u64, u64, u64, usize) {
    (s.mean.to_bits(), s.std_dev.to_bits(), s.ci95.to_bits(), s.n)
}

/// A plan exercising every fault class: a scheduled node crash with
/// recovery, a scrape blackout, a metric-noise window, a control-plane
/// stall, and low-rate stochastic faults on top.
fn mixed_fault_plan() -> FaultPlan {
    FaultPlan::new()
        .with_node_crash(NodeId::new(1), SimTime::from_secs(30), Some(SimDuration::from_secs(40)))
        .with_scrape_blackout(SimTime::from_secs(20), SimDuration::from_secs(15))
        .with_metric_noise(SimTime::from_secs(60), SimDuration::from_secs(30), 0.3)
        .with_control_stall(SimTime::from_secs(80), SimDuration::from_secs(12))
        .with_stochastic(StochasticFaults {
            node_crashes_per_hour: 20.0,
            blackouts_per_hour: 30.0,
            stalls_per_hour: 30.0,
            ..StochasticFaults::default()
        })
}

/// The same (config, seed) matrix must aggregate to byte-identical
/// statistics regardless of how many worker threads execute it — with and
/// without a fault plan (the injector's stochastic realization and noise
/// stream must be a pure function of the seed).
#[test]
fn aggregates_identical_across_thread_counts() {
    let configs = vec![
        small_config(ManagerKind::Evolve, 120),
        small_config(ManagerKind::KubeStatic, 120),
        with_faults(small_config(ManagerKind::Evolve, 120), mixed_fault_plan()),
        with_faults(
            small_config(ManagerKind::Hpa { target_utilization: 0.6 }, 120),
            mixed_fault_plan(),
        ),
    ];
    let seeds = [42u64, 43, 44, 45];
    let serial = Harness::new().with_threads(1).run_matrix(&configs, &seeds);
    let threaded = Harness::new().with_threads(4).run_matrix(&configs, &seeds);
    assert_eq!(serial.len(), threaded.len());
    for (a, b) in serial.iter().zip(&threaded) {
        assert_eq!(a.seeds, b.seeds);
        for (k, (ra, rb)) in a.runs.iter().zip(&b.runs).enumerate() {
            assert_eq!(
                ra.total_violation_rate().to_bits(),
                rb.total_violation_rate().to_bits(),
                "run {k} (seed {}) diverged: {} vs {}",
                a.seeds[k],
                ra.total_violation_rate(),
                rb.total_violation_rate()
            );
        }
        assert_eq!(summary_bits(&a.violation_rate()), summary_bits(&b.violation_rate()));
        assert_eq!(summary_bits(&a.alloc_share()), summary_bits(&b.alloc_share()));
        assert_eq!(summary_bits(&a.used_share()), summary_bits(&b.used_share()));
        assert_eq!(summary_bits(&a.preemptions()), summary_bits(&b.preemptions()));
        let events = |rep: &evolve_core::ReplicatedOutcome| rep.summarize(|r| r.events as f64);
        assert_eq!(summary_bits(&events(a)), summary_bits(&events(b)));
        for (ra, rb) in a.runs.iter().zip(&b.runs) {
            assert_eq!(ra.total_violations(), rb.total_violations());
            assert_eq!(ra.total_windows(), rb.total_windows());
            assert_eq!(ra.events, rb.events);
            assert_eq!(ra.end_time, rb.end_time);
        }
    }
}

/// A plan exercising the actuation-path fault classes added by the chaos
/// harness: a drop window, a delay window, a partial-rollout window, a
/// node flap, and stochastic actuation drops on top.
fn actuation_fault_plan() -> FaultPlan {
    FaultPlan::new()
        .with_actuation_drop(SimTime::from_secs(25), SimDuration::from_secs(20))
        .with_actuation_delay(
            SimTime::from_secs(55),
            SimDuration::from_secs(20),
            SimDuration::from_secs(12),
        )
        .with_actuation_partial(SimTime::from_secs(85), SimDuration::from_secs(20), 0.5)
        .with_node_flap(NodeId::new(2), SimTime::from_secs(40), 3, SimDuration::from_secs(10))
        .with_stochastic(StochasticFaults {
            actuation_drops_per_hour: 40.0,
            ..StochasticFaults::default()
        })
}

/// Thread-count independence must also hold for the actuation-path fault
/// kinds (drop/delay/partial/flap plus stochastic drops): the injector's
/// realization and the manager's deferred-actuation queue are pure
/// functions of the seed, never of scheduling order.
#[test]
fn actuation_faults_identical_across_thread_counts() {
    let configs = vec![
        with_faults(small_config(ManagerKind::Evolve, 150), actuation_fault_plan()),
        with_faults(small_config(ManagerKind::Hpa { target_utilization: 0.6 }, 150), {
            actuation_fault_plan()
        }),
    ];
    let seeds = [42u64, 43, 44];
    let serial = Harness::new().with_threads(1).run_matrix(&configs, &seeds);
    let threaded = Harness::new().with_threads(4).run_matrix(&configs, &seeds);
    assert_eq!(serial.len(), threaded.len());
    for (a, b) in serial.iter().zip(&threaded) {
        for (ra, rb) in a.runs.iter().zip(&b.runs) {
            assert_eq!(ra.total_violations(), rb.total_violations());
            assert_eq!(ra.total_windows(), rb.total_windows());
            assert_eq!(ra.events, rb.events);
            assert_eq!(ra.dropped_actuations, rb.dropped_actuations);
            assert_eq!(ra.delayed_actuations, rb.delayed_actuations);
            assert_eq!(ra.partial_actuations, rb.partial_actuations);
            assert_eq!(ra.resize_failures, rb.resize_failures);
            assert_eq!(ra.total_violation_rate().to_bits(), rb.total_violation_rate().to_bits());
        }
        assert_eq!(summary_bits(&a.violation_rate()), summary_bits(&b.violation_rate()));
        assert_eq!(summary_bits(&a.used_share()), summary_bits(&b.used_share()));
    }
    // The faults actually bit: at least one run must have seen a dropped
    // or delayed actuation, or the plan tested nothing.
    let touched = serial
        .iter()
        .flat_map(|rep| rep.runs.iter())
        .any(|r| r.dropped_actuations > 0 || r.delayed_actuations > 0 || r.partial_actuations > 0);
    assert!(touched, "no actuation fault ever fired");
}

/// Over ≥5 seeds a seed-sensitive metric must produce a finite, non-zero
/// confidence interval, and a constant metric a zero-width one.
#[test]
fn ci_width_sanity_over_five_seeds() {
    let seeds = [42u64, 43, 44, 45, 46];
    let rep = Harness::new().run_seeds(&small_config(ManagerKind::Evolve, 120), &seeds);
    assert_eq!(rep.runs.len(), 5);

    let events = rep.summarize(|r| r.events as f64);
    assert_eq!(events.n, 5);
    assert!(events.mean > 0.0);
    assert!(events.ci95.is_finite());
    assert!(events.ci95 > 0.0, "event counts vary across seeds, so the CI must have width");
    // Student-t at n=5 (df=4): CI = t * sd / sqrt(n).
    let expected = 2.776 * events.std_dev / 5f64.sqrt();
    assert!((events.ci95 - expected).abs() < 1e-9 * expected.max(1.0));

    let constant = rep.summarize(|r| r.end_time.as_secs_f64());
    assert_eq!(constant.ci95, 0.0, "a seed-independent metric has zero CI width");
}
