//! Baseline autoscalers every experiment compares against.
//!
//! * [`StaticPolicy`] — stock Kubernetes: whatever requests the user
//!   wrote stay in force forever.
//! * [`HpaPolicy`] — the Horizontal Pod Autoscaler: fixed per-replica
//!   requests, replica count follows the canonical
//!   `desired = ceil(current × utilization / target)` rule on CPU.
//! * [`VpaPolicy`] — a Vertical-Pod-Autoscaler-like baseline: replica
//!   count fixed, per-replica requests follow a smoothed peak of observed
//!   usage with a safety margin.

use evolve_telemetry::Ewma;
use evolve_types::codec::{Codec, Decoder, Encoder};
use evolve_types::{Error, Resource, ResourceVec, Result};

use crate::policy::{AutoscalePolicy, ObservedAppState, PolicyDecision, PolicyInput};

/// Leading byte of an HPA checkpoint blob.
const HPA_POLICY_TAG: u8 = 2;
/// Leading byte of a VPA checkpoint blob.
const VPA_POLICY_TAG: u8 = 3;

/// Stock Kubernetes: static requests, static replicas.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StaticPolicy;

impl AutoscalePolicy for StaticPolicy {
    fn name(&self) -> &'static str {
        "kube-static"
    }

    fn decide(&mut self, _input: &PolicyInput<'_>) -> Option<PolicyDecision> {
        None
    }
}

/// The Kubernetes Horizontal Pod Autoscaler on CPU utilization.
#[derive(Debug, Clone)]
pub struct HpaPolicy {
    /// Target CPU utilization (usage/request), e.g. 0.6.
    target_utilization: f64,
    /// Fixed per-replica allocation; latched from the first observed
    /// window so HPA keeps whatever the user originally requested.
    per_replica: ResourceVec,
    latched: bool,
    min_replicas: u32,
    max_replicas: u32,
    replicas: u32,
    /// Ticks remaining before another scale-down is allowed
    /// (HPA's stabilization window).
    down_cooldown: u32,
    cooldown_ticks: u32,
}

impl HpaPolicy {
    /// Creates an HPA with the canonical 60%-CPU target.
    ///
    /// # Panics
    ///
    /// Panics when `target_utilization` is outside `(0, 1]` or the bounds
    /// are inverted.
    #[must_use]
    pub fn new(
        target_utilization: f64,
        per_replica: ResourceVec,
        initial_replicas: u32,
        max_replicas: u32,
    ) -> Self {
        assert!(
            target_utilization > 0.0 && target_utilization <= 1.0,
            "target utilization must be in (0, 1]"
        );
        assert!(max_replicas >= 1, "max replicas must be at least 1");
        HpaPolicy {
            target_utilization,
            per_replica,
            latched: false,
            min_replicas: 1,
            max_replicas,
            replicas: initial_replicas.clamp(1, max_replicas),
            down_cooldown: 0,
            cooldown_ticks: 6, // ≈ the 5-minute HPA stabilization window
        }
    }
}

impl AutoscalePolicy for HpaPolicy {
    fn name(&self) -> &'static str {
        "hpa"
    }

    fn decide(&mut self, input: &PolicyInput<'_>) -> Option<PolicyDecision> {
        let w = input.window;
        if self.down_cooldown > 0 {
            self.down_cooldown -= 1;
        }
        if w.running_replicas == 0 {
            return Some(PolicyDecision { per_replica: self.per_replica, replicas: self.replicas });
        }
        if !self.latched {
            // Keep the user's original request and current size.
            if !w.alloc_per_replica.is_zero() {
                self.per_replica = w.alloc_per_replica;
            }
            self.replicas = (w.running_replicas + w.pending_replicas).clamp(1, self.max_replicas);
            self.latched = true;
        }
        let cpu_request = self.per_replica[Resource::Cpu].max(1e-9);
        let utilization = w.usage_per_replica()[Resource::Cpu] / cpu_request;
        // desired = ceil(current × utilization / target), with a 10%
        // tolerance band exactly like the real HPA.
        let ratio = utilization / self.target_utilization;
        if (ratio - 1.0).abs() > 0.1 {
            let desired = (f64::from(w.running_replicas) * ratio).ceil() as u32;
            let desired = desired.clamp(self.min_replicas, self.max_replicas);
            if desired > self.replicas {
                self.replicas = desired;
            } else if desired < self.replicas && self.down_cooldown == 0 {
                // Scale down one step at a time after the stabilization
                // window.
                self.replicas -= 1;
                self.down_cooldown = self.cooldown_ticks;
            }
        }
        Some(PolicyDecision { per_replica: self.per_replica, replicas: self.replicas })
    }

    fn checkpoint(&self, enc: &mut Encoder) {
        HPA_POLICY_TAG.encode(enc);
        self.per_replica.encode(enc);
        self.latched.encode(enc);
        self.replicas.encode(enc);
        self.down_cooldown.encode(enc);
    }

    fn restore(&mut self, dec: &mut Decoder<'_>) -> Result<()> {
        let tag = u8::decode(dec)?;
        if tag != HPA_POLICY_TAG {
            return Err(Error::CorruptCheckpoint(format!(
                "policy tag {tag} is not an hpa policy blob"
            )));
        }
        self.per_replica = ResourceVec::decode(dec)?;
        self.latched = bool::decode(dec)?;
        self.replicas = u32::decode(dec)?;
        self.down_cooldown = u32::decode(dec)?;
        Ok(())
    }

    fn reconstruct(&mut self, observed: &ObservedAppState) {
        if !observed.alloc_per_replica.is_zero() {
            self.per_replica = observed.alloc_per_replica;
        }
        if observed.replicas > 0 {
            self.replicas = observed.replicas.clamp(self.min_replicas, self.max_replicas);
        }
        self.latched = true;
        // Fresh stabilization window so the restarted HPA does not
        // immediately scale in on one quiet post-restart measurement.
        self.down_cooldown = self.cooldown_ticks;
    }

    fn reset_to_spec(&mut self) {
        // Keep constructor defaults, skip observation: the next decision
        // actuates the spec's initial size regardless of the cluster.
        self.latched = true;
        self.down_cooldown = 0;
    }
}

/// A VPA-like vertical baseline: requests follow smoothed peak usage.
#[derive(Debug, Clone)]
pub struct VpaPolicy {
    /// Safety margin above observed usage (e.g. 0.3 → 30% headroom).
    margin: f64,
    /// Smoothed peak usage per resource.
    peak: [Ewma; 4],
    min_alloc: ResourceVec,
    max_alloc: ResourceVec,
    replicas: u32,
}

impl VpaPolicy {
    /// Creates a VPA-like policy.
    ///
    /// # Panics
    ///
    /// Panics when `margin` is negative.
    #[must_use]
    pub fn new(margin: f64, min_alloc: ResourceVec, max_alloc: ResourceVec, replicas: u32) -> Self {
        assert!(margin >= 0.0, "margin must be non-negative");
        VpaPolicy {
            margin,
            peak: [Ewma::new(0.3), Ewma::new(0.3), Ewma::new(0.3), Ewma::new(0.3)],
            min_alloc,
            max_alloc,
            replicas: replicas.max(1),
        }
    }
}

impl AutoscalePolicy for VpaPolicy {
    fn name(&self) -> &'static str {
        "vpa"
    }

    fn decide(&mut self, input: &PolicyInput<'_>) -> Option<PolicyDecision> {
        let usage = input.window.usage_per_replica();
        let mut target = ResourceVec::ZERO;
        for r in Resource::ALL {
            let peak = &mut self.peak[r.index()];
            // Track upward fast, decay slowly (peak-biased EWMA).
            let current = peak.value_or(0.0).max(usage[r] * 0.0);
            if usage[r] > current {
                peak.observe(usage[r]);
                peak.observe(usage[r]); // double-weight upward moves
            } else {
                peak.observe(usage[r]);
            }
            target[r] = peak.value_or(usage[r]) * (1.0 + self.margin);
        }
        let target = target.clamp(&self.min_alloc, &self.max_alloc);
        Some(PolicyDecision { per_replica: target, replicas: self.replicas })
    }

    fn checkpoint(&self, enc: &mut Encoder) {
        VPA_POLICY_TAG.encode(enc);
        for peak in &self.peak {
            peak.encode(enc);
        }
        self.replicas.encode(enc);
    }

    fn restore(&mut self, dec: &mut Decoder<'_>) -> Result<()> {
        let tag = u8::decode(dec)?;
        if tag != VPA_POLICY_TAG {
            return Err(Error::CorruptCheckpoint(format!(
                "policy tag {tag} is not a vpa policy blob"
            )));
        }
        for peak in &mut self.peak {
            *peak = Ewma::decode(dec)?;
        }
        self.replicas = u32::decode(dec)?;
        Ok(())
    }

    fn reconstruct(&mut self, observed: &ObservedAppState) {
        if observed.replicas > 0 {
            self.replicas = observed.replicas;
        }
        // Seed the peak trackers from the granted allocation so the first
        // post-restart target is near the current grant rather than the
        // unwarmed default.
        if !observed.alloc_per_replica.is_zero() {
            for r in Resource::ALL {
                self.peak[r.index()].observe(observed.alloc_per_replica[r] / (1.0 + self.margin));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::SignalQuality;
    use evolve_sim::{AppStatus, AppWindow};
    use evolve_types::{AppId, SimDuration, SimTime};
    use evolve_workload::{PloSpec, WorldClass};

    fn status() -> AppStatus {
        AppStatus {
            id: AppId::new(0),
            name: "svc".into(),
            world: WorldClass::Microservice,
            plo: PloSpec::LatencyP99 { target_ms: 100.0 },
            priority: evolve_types::PriorityClass::default(),
        }
    }

    fn window(replicas: u32, cpu_usage_per_replica: f64) -> AppWindow {
        AppWindow {
            at: SimTime::from_secs(10),
            duration: SimDuration::from_secs(5),
            arrivals: 100,
            completions: 100,
            timeouts: 0,
            shed_requests: 0,
            oom_kills: 0,
            p99_ms: Some(50.0),
            mean_ms: Some(25.0),
            throughput_rps: 20.0,
            usage: ResourceVec::new(cpu_usage_per_replica * f64::from(replicas), 256.0, 5.0, 5.0),
            alloc: ResourceVec::splat(1_000.0) * f64::from(replicas),
            alloc_per_replica: ResourceVec::splat(1_000.0),
            running_replicas: replicas,
            pending_replicas: 0,
            progress: None,
            projected_makespan_s: None,
        }
    }

    #[test]
    fn static_policy_never_acts() {
        let mut p = StaticPolicy;
        let st = status();
        let w = window(1, 999.0);
        assert_eq!(
            p.decide(&PolicyInput {
                app: &st,
                window: &w,
                dt_secs: 5.0,
                resize_failures: 0,
                signal: SignalQuality::Fresh,
            }),
            None
        );
        assert_eq!(p.name(), "kube-static");
    }

    #[test]
    fn hpa_scales_up_on_high_utilization() {
        let mut p = HpaPolicy::new(0.6, ResourceVec::splat(1_000.0), 2, 10);
        let st = status();
        // 90% utilization vs 60% target → desired = ceil(2×1.5) = 3.
        let w = window(2, 900.0);
        let d = p
            .decide(&PolicyInput {
                app: &st,
                window: &w,
                dt_secs: 5.0,
                resize_failures: 0,
                signal: SignalQuality::Fresh,
            })
            .unwrap();
        assert_eq!(d.replicas, 3);
        assert_eq!(d.per_replica, ResourceVec::splat(1_000.0));
    }

    #[test]
    fn hpa_scale_down_is_slow() {
        let mut p = HpaPolicy::new(0.6, ResourceVec::splat(1_000.0), 6, 10);
        let st = status();
        let w = window(6, 60.0); // 6% utilization → wants 1 replica
        let mut replicas = Vec::new();
        for _ in 0..8 {
            let d = p
                .decide(&PolicyInput {
                    app: &st,
                    window: &w,
                    dt_secs: 5.0,
                    resize_failures: 0,
                    signal: SignalQuality::Fresh,
                })
                .unwrap();
            replicas.push(d.replicas);
        }
        // One step down, then frozen by the stabilization window.
        assert_eq!(replicas[0], 5);
        assert!(replicas.iter().all(|r| *r >= 4), "{replicas:?}");
    }

    #[test]
    fn hpa_respects_max() {
        let mut p = HpaPolicy::new(0.5, ResourceVec::splat(1_000.0), 3, 4);
        let st = status();
        let w = window(3, 1_000.0); // 200% of target
        let d = p
            .decide(&PolicyInput {
                app: &st,
                window: &w,
                dt_secs: 5.0,
                resize_failures: 0,
                signal: SignalQuality::Fresh,
            })
            .unwrap();
        assert_eq!(d.replicas, 4);
    }

    #[test]
    fn hpa_tolerance_band_holds_steady() {
        let mut p = HpaPolicy::new(0.6, ResourceVec::splat(1_000.0), 3, 10);
        let st = status();
        let w = window(3, 620.0); // 62% ≈ within 10% of 60%
        let d = p
            .decide(&PolicyInput {
                app: &st,
                window: &w,
                dt_secs: 5.0,
                resize_failures: 0,
                signal: SignalQuality::Fresh,
            })
            .unwrap();
        assert_eq!(d.replicas, 3);
    }

    #[test]
    fn vpa_follows_usage_with_margin() {
        let mut p = VpaPolicy::new(0.3, ResourceVec::splat(10.0), ResourceVec::splat(100_000.0), 2);
        let st = status();
        let mut last = ResourceVec::ZERO;
        for _ in 0..20 {
            let w = window(2, 800.0);
            let d = p
                .decide(&PolicyInput {
                    app: &st,
                    window: &w,
                    dt_secs: 5.0,
                    resize_failures: 0,
                    signal: SignalQuality::Fresh,
                })
                .unwrap();
            last = d.per_replica;
            assert_eq!(d.replicas, 2);
        }
        // Converges to ~800 × 1.3 on CPU.
        assert!((last.cpu() - 1_040.0).abs() < 100.0, "cpu {}", last.cpu());
    }

    #[test]
    fn vpa_clamps_to_bounds() {
        let mut p = VpaPolicy::new(0.3, ResourceVec::splat(500.0), ResourceVec::splat(600.0), 1);
        let st = status();
        let w = window(1, 10_000.0);
        let d = p
            .decide(&PolicyInput {
                app: &st,
                window: &w,
                dt_secs: 5.0,
                resize_failures: 0,
                signal: SignalQuality::Fresh,
            })
            .unwrap();
        assert!(d.per_replica.fits_within(&ResourceVec::splat(600.0)));
    }
}
