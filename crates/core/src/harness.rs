//! Parallel multi-seed replication harness.
//!
//! One simulation run is one sample; a paper table needs many. The
//! harness fans a set of [`RunConfig`]s × seed list across OS threads
//! (plain `std::thread::scope`, no external dependencies) and reduces
//! each configuration's runs into mean ± 95 % confidence statistics via
//! [`Summary`].
//!
//! Determinism: every (config, seed) job is keyed by its position in the
//! request, workers claim jobs from a shared counter, and results land in
//! positional slots — so the aggregate statistics are **bit-identical
//! regardless of thread count**, and each individual run is reproducible
//! from its seed alone.
//!
//! # Examples
//!
//! ```no_run
//! use evolve_core::{Harness, ManagerKind, RunConfig};
//! use evolve_workload::Scenario;
//!
//! let base = RunConfig::builder(Scenario::single_diurnal(), ManagerKind::Evolve)
//!     .nodes(4)
//!     .record_series(false)
//!     .build();
//! let rep = Harness::new().run_seeds(&base, &[42, 43, 44, 45, 46]);
//! let viol = rep.violation_rate();
//! println!("violation rate {:.3} ± {:.3} (n={})", viol.mean, viol.ci95, viol.n);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};

use crate::report::Summary;
use crate::runner::{ExperimentRunner, RunConfig, RunOutcome};

/// Fans replicated experiment runs across OS threads.
#[derive(Debug, Clone)]
pub struct Harness {
    threads: usize,
}

impl Default for Harness {
    fn default() -> Self {
        Harness::new()
    }
}

impl Harness {
    /// A harness using all available cores.
    #[must_use]
    pub fn new() -> Self {
        let threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        Harness { threads }
    }

    /// Overrides the worker-thread count.
    ///
    /// # Panics
    ///
    /// Panics when zero.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads > 0, "need at least one worker thread");
        self.threads = threads;
        self
    }

    /// Runs `base` once per seed (the config's own seed is ignored) and
    /// aggregates the outcomes.
    ///
    /// # Panics
    ///
    /// Panics when `seeds` is empty or a worker panics.
    #[must_use]
    pub fn run_seeds(&self, base: &RunConfig, seeds: &[u64]) -> ReplicatedOutcome {
        self.run_matrix(std::slice::from_ref(base), seeds)
            .pop()
            .expect("one config in, one replicated outcome out")
    }

    /// Runs every config × every seed and aggregates per config, in
    /// config order.
    ///
    /// # Panics
    ///
    /// Panics when `configs` or `seeds` is empty or a worker panics.
    #[must_use]
    pub fn run_matrix(&self, configs: &[RunConfig], seeds: &[u64]) -> Vec<ReplicatedOutcome> {
        assert!(!configs.is_empty(), "need at least one run config");
        assert!(!seeds.is_empty(), "need at least one seed");
        let job_count = configs.len() * seeds.len();
        let workers = self.threads.min(job_count);
        let next_job = AtomicUsize::new(0);

        let mut results: Vec<(usize, RunOutcome)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let next_job = &next_job;
                    scope.spawn(move || {
                        let mut local = Vec::new();
                        loop {
                            let job = next_job.fetch_add(1, Ordering::Relaxed);
                            if job >= job_count {
                                break;
                            }
                            let mut cfg = configs[job / seeds.len()].clone();
                            cfg.seed = seeds[job % seeds.len()];
                            local.push((job, ExperimentRunner::new(cfg).run()));
                        }
                        local
                    })
                })
                .collect();
            handles.into_iter().flat_map(|h| h.join().expect("harness worker panicked")).collect()
        });
        // Positional order, not completion order: aggregation below must
        // not depend on which thread finished first.
        results.sort_by_key(|(job, _)| *job);

        let mut out = Vec::with_capacity(configs.len());
        let mut results = results.into_iter();
        for _ in configs {
            let runs: Vec<RunOutcome> =
                (0..seeds.len()).map(|_| results.next().expect("all jobs ran").1).collect();
            out.push(ReplicatedOutcome { seeds: seeds.to_vec(), runs });
        }
        // Stderr, not stdout: tables and CSVs stay clean while every
        // binary still reports simulator throughput.
        for rep in &out {
            eprintln!("{}", rep.perf_line());
        }
        out
    }
}

/// The outcomes of one configuration replicated across seeds.
#[derive(Debug)]
pub struct ReplicatedOutcome {
    /// The seeds, in run order.
    pub seeds: Vec<u64>,
    /// One outcome per seed, in the same order as `seeds`.
    pub runs: Vec<RunOutcome>,
}

impl ReplicatedOutcome {
    /// The manager label (identical across runs).
    #[must_use]
    pub fn manager(&self) -> &str {
        &self.representative().manager
    }

    /// The scenario name (identical across runs).
    #[must_use]
    pub fn scenario(&self) -> &str {
        &self.representative().scenario
    }

    /// The first-seed run — the one to use for time-series plots, so a
    /// figure's trace stays reproducible independent of the seed count.
    #[must_use]
    pub fn representative(&self) -> &RunOutcome {
        &self.runs[0]
    }

    /// One-line aggregate of the [`RunOutcome::perf`] blocks: mean
    /// simulated-seconds-per-wall-second plus the summed engine counters.
    /// Every experiment binary surfaces this on stderr (via
    /// [`Harness::run_matrix`]) so a perf regression is visible in any
    /// table or figure run, not only in the dedicated bench.
    #[must_use]
    pub fn perf_line(&self) -> String {
        let simwall = self.summarize(|r| r.perf.sim_secs_per_wall_sec);
        let ticks: u64 = self.runs.iter().map(|r| r.perf.ticks).sum();
        let events: u64 = self.runs.iter().map(|r| r.perf.events).sum();
        let peak = self.runs.iter().map(|r| r.perf.peak_running_pods).max().unwrap_or(0);
        let fast: u64 = self.runs.iter().map(|r| r.perf.fast_metric_records).sum();
        format!(
            "perf[{}/{}]: {:.0} sim-s/wall-s mean over {} run(s); {} ticks, {} events, \
             peak {} running pods, {} fast-path metric records",
            self.manager(),
            self.scenario(),
            simwall.mean,
            self.runs.len(),
            ticks,
            events,
            peak,
            fast,
        )
    }

    /// Mean ± CI of an arbitrary per-run metric, evaluated in seed order.
    #[must_use]
    pub fn summarize(&self, metric: impl Fn(&RunOutcome) -> f64) -> Summary {
        let samples: Vec<f64> = self.runs.iter().map(metric).collect();
        Summary::from_samples(&samples)
    }

    /// Mean ± CI of the aggregate PLO violation rate.
    #[must_use]
    pub fn violation_rate(&self) -> Summary {
        self.summarize(RunOutcome::total_violation_rate)
    }

    /// Mean ± CI of the per-world violation rates `(cloud, bigdata, hpc)`.
    #[must_use]
    pub fn violation_rate_by_world(&self) -> [Summary; 3] {
        [0, 1, 2].map(|w| self.summarize(|r| r.violation_rate_by_world()[w]))
    }

    /// Mean ± CI of the cluster's mean allocated share.
    #[must_use]
    pub fn alloc_share(&self) -> Summary {
        self.summarize(|r| r.utilization.mean_allocated())
    }

    /// Mean ± CI of the cluster's mean used share.
    #[must_use]
    pub fn used_share(&self) -> Summary {
        self.summarize(|r| r.utilization.mean_used())
    }

    /// Mean ± CI of the fraction of batch/HPC jobs that met their
    /// deadline (1.0 for runs without jobs).
    #[must_use]
    pub fn deadline_hit_rate(&self) -> Summary {
        self.summarize(|r| {
            let (hits, total) = r.deadline_hits();
            if total == 0 {
                1.0
            } else {
                hits as f64 / total as f64
            }
        })
    }

    /// Mean ± CI of total completions across apps.
    #[must_use]
    pub fn completions(&self) -> Summary {
        self.summarize(|r| r.apps.iter().map(|a| a.completions).sum::<u64>() as f64)
    }

    /// Mean ± CI of total request timeouts across apps.
    #[must_use]
    pub fn timeouts(&self) -> Summary {
        self.summarize(|r| r.apps.iter().map(|a| a.timeouts).sum::<u64>() as f64)
    }

    /// Mean ± CI of preemptions executed.
    #[must_use]
    pub fn preemptions(&self) -> Summary {
        self.summarize(|r| r.preemptions as f64)
    }

    /// Per-app violation-rate summaries, in app order, labelled by app
    /// name. Apps are identical across seeds by construction.
    #[must_use]
    pub fn per_app_violation_rates(&self) -> Vec<(String, Summary)> {
        let first = self.representative();
        (0..first.apps.len())
            .map(|i| {
                let name = first.apps[i].name.clone();
                let s = self.summarize(|r| r.apps[i].violation_rate());
                (name, s)
            })
            .collect()
    }
}
