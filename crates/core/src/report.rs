//! Report rendering: aligned text tables and CSV export.
//!
//! The benchmark binaries print the exact rows EXPERIMENTS.md records;
//! this module keeps the formatting in one place.

use std::fmt;
use std::io::Write as _;
use std::path::Path;

/// A simple aligned text table.
///
/// # Examples
///
/// ```
/// use evolve_core::Table;
///
/// let mut t = Table::new(vec!["policy".into(), "violations".into()]);
/// t.add_row(vec!["evolve".into(), "12".into()]);
/// t.add_row(vec!["kube-static".into(), "96".into()]);
/// let s = t.to_string();
/// assert!(s.contains("kube-static"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new(headers: Vec<String>) -> Self {
        Table { headers, rows: Vec::new() }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics when the row width differs from the header width.
    pub fn add_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no rows were added.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The table as CSV (headers + rows).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let print_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (i, cell) in cells.iter().enumerate() {
                write!(f, " {cell:<width$} |", width = widths[i])?;
            }
            writeln!(f)
        };
        print_row(f, &self.headers)?;
        write!(f, "|")?;
        for w in &widths {
            write!(f, "{}|", "-".repeat(w + 2))?;
        }
        writeln!(f)?;
        for row in &self.rows {
            print_row(f, row)?;
        }
        Ok(())
    }
}

/// Two-sided 97.5 % Student-t critical values for small degrees of
/// freedom (index = df − 1); beyond the table the normal approximation
/// 1.96 is close enough.
const T_975: [f64; 30] = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
    2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
    2.052, 2.048, 2.045, 2.042,
];

/// Mean and spread of one metric replicated across seeds.
///
/// # Examples
///
/// ```
/// use evolve_core::Summary;
///
/// let s = Summary::from_samples(&[1.0, 2.0, 3.0]);
/// assert_eq!(s.n, 3);
/// assert!((s.mean - 2.0).abs() < 1e-12);
/// assert!(s.ci95 > 0.0);
/// assert_eq!(Summary::from_samples(&[5.0]).ci95, 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (Bessel-corrected; 0 for n < 2).
    pub std_dev: f64,
    /// Half-width of the 95 % confidence interval of the mean
    /// (Student-t; 0 for n < 2).
    pub ci95: f64,
    /// Number of samples.
    pub n: usize,
}

impl Summary {
    /// Summarizes the samples. Accumulation is in slice order, so the
    /// same samples always reduce to bit-identical statistics.
    ///
    /// # Panics
    ///
    /// Panics when `samples` is empty.
    #[must_use]
    pub fn from_samples(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "cannot summarize zero samples");
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        if n < 2 {
            return Summary { mean, std_dev: 0.0, ci95: 0.0, n };
        }
        let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / (n as f64 - 1.0);
        let std_dev = var.sqrt();
        let t = T_975.get(n - 2).copied().unwrap_or(1.96);
        let ci95 = t * std_dev / (n as f64).sqrt();
        Summary { mean, std_dev, ci95, n }
    }

    /// Renders as `mean ± ci95` with the given number of decimals; a
    /// single-sample summary renders as the bare mean.
    #[must_use]
    pub fn display(&self, decimals: usize) -> String {
        if self.n < 2 {
            format!("{:.decimals$}", self.mean)
        } else {
            format!("{:.decimals$} ± {:.decimals$}", self.mean, self.ci95)
        }
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.display(3))
    }
}

/// Writes CSV content under `dir/name.csv`, creating the directory.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_csv(dir: &Path, name: &str, content: &str) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let mut f = std::fs::File::create(dir.join(format!("{name}.csv")))?;
    f.write_all(content.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table {
        let mut t = Table::new(vec!["a".into(), "bee".into()]);
        t.add_row(vec!["1".into(), "2".into()]);
        t.add_row(vec!["333".into(), "4".into()]);
        t
    }

    #[test]
    fn display_aligns_columns() {
        let s = table().to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines have the same width.
        assert!(lines.iter().all(|l| l.len() == lines[0].len()), "{s}");
        assert!(lines[0].contains("a") && lines[0].contains("bee"));
    }

    #[test]
    fn csv_roundtrip() {
        let csv = table().to_csv();
        assert_eq!(csv, "a,bee\n1,2\n333,4\n");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(vec!["x".into()]);
        t.add_row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn write_csv_creates_file() {
        let dir = std::env::temp_dir().join("evolve-report-test");
        write_csv(&dir, "t", "a,b\n").unwrap();
        let content = std::fs::read_to_string(dir.join("t.csv")).unwrap();
        assert_eq!(content, "a,b\n");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn summary_small_sample_uses_student_t() {
        let s = Summary::from_samples(&[10.0, 12.0, 14.0]);
        assert!((s.mean - 12.0).abs() < 1e-12);
        assert!((s.std_dev - 2.0).abs() < 1e-12);
        // df = 2 → t = 4.303; ci = t * sd / sqrt(3).
        let expect = 4.303 * 2.0 / 3f64.sqrt();
        assert!((s.ci95 - expect).abs() < 1e-9);
        assert_eq!(s.display(1), "12.0 ± 5.0");
    }

    #[test]
    fn summary_single_sample_has_zero_spread() {
        let s = Summary::from_samples(&[7.5]);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.ci95, 0.0);
        assert_eq!(s.display(2), "7.50");
    }

    #[test]
    fn summary_large_sample_uses_normal_quantile() {
        let samples: Vec<f64> = (0..100).map(f64::from).collect();
        let s = Summary::from_samples(&samples);
        assert_eq!(s.n, 100);
        let expect = 1.96 * s.std_dev / 10.0;
        assert!((s.ci95 - expect).abs() < 1e-9);
    }

    #[test]
    fn len_and_empty() {
        let t = Table::new(vec!["x".into()]);
        assert!(t.is_empty());
        assert_eq!(table().len(), 2);
    }
}
