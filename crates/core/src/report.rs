//! Report rendering: aligned text tables and CSV export.
//!
//! The benchmark binaries print the exact rows EXPERIMENTS.md records;
//! this module keeps the formatting in one place.

use std::fmt;
use std::io::Write as _;
use std::path::Path;

/// A simple aligned text table.
///
/// # Examples
///
/// ```
/// use evolve_core::Table;
///
/// let mut t = Table::new(vec!["policy".into(), "violations".into()]);
/// t.add_row(vec!["evolve".into(), "12".into()]);
/// t.add_row(vec!["kube-static".into(), "96".into()]);
/// let s = t.to_string();
/// assert!(s.contains("kube-static"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new(headers: Vec<String>) -> Self {
        Table { headers, rows: Vec::new() }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics when the row width differs from the header width.
    pub fn add_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no rows were added.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The table as CSV (headers + rows).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let print_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (i, cell) in cells.iter().enumerate() {
                write!(f, " {cell:<width$} |", width = widths[i])?;
            }
            writeln!(f)
        };
        print_row(f, &self.headers)?;
        write!(f, "|")?;
        for w in &widths {
            write!(f, "{}|", "-".repeat(w + 2))?;
        }
        writeln!(f)?;
        for row in &self.rows {
            print_row(f, row)?;
        }
        Ok(())
    }
}

/// Writes CSV content under `dir/name.csv`, creating the directory.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_csv(dir: &Path, name: &str, content: &str) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let mut f = std::fs::File::create(dir.join(format!("{name}.csv")))?;
    f.write_all(content.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table {
        let mut t = Table::new(vec!["a".into(), "bee".into()]);
        t.add_row(vec!["1".into(), "2".into()]);
        t.add_row(vec!["333".into(), "4".into()]);
        t
    }

    #[test]
    fn display_aligns_columns() {
        let s = table().to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines have the same width.
        assert!(lines.iter().all(|l| l.len() == lines[0].len()), "{s}");
        assert!(lines[0].contains("a") && lines[0].contains("bee"));
    }

    #[test]
    fn csv_roundtrip() {
        let csv = table().to_csv();
        assert_eq!(csv, "a,bee\n1,2\n333,4\n");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(vec!["x".into()]);
        t.add_row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn write_csv_creates_file() {
        let dir = std::env::temp_dir().join("evolve-report-test");
        write_csv(&dir, "t", "a,b\n").unwrap();
        let content = std::fs::read_to_string(dir.join("t.csv")).unwrap();
        assert_eq!(content, "a,b\n");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn len_and_empty() {
        let t = Table::new(vec!["x".into()]);
        assert!(t.is_empty());
        assert_eq!(table().len(), 2);
    }
}
