//! The experiment runner: wires a scenario onto a cluster under a chosen
//! manager and scheduler, runs the control loop, and collects the
//! statistics every table and figure reports.

use evolve_control::{ArbiterConfig, ClipReason, GrantDecision};
use evolve_scheduler::{FeasibilityIndex, RequeueBackoff, SchedulerFramework};
use evolve_sim::{
    ArbitrationCheck, ChaosOracle, ClusterConfig, FaultInjector, FaultKind, FaultPlan, NodeShape,
    OracleReport, Simulation, SimulationConfig,
};
use evolve_telemetry::trace::{
    FaultTrace, SpanKind, SpanTrace, TraceConfig, TraceEvent, TraceRing,
};
use evolve_telemetry::{MetricKey, MetricRegistry, UtilizationAccount, UtilizationSummary};
use evolve_types::{AppId, NodeId, PodId, PriorityClass, ResourceVec, SimDuration, SimTime};
use evolve_workload::{
    ArbiterSpec, FaultSpec, SamplingMode, Scenario, ScenarioError, ScenarioSpec, WorldClass,
};

use crate::manager::{ManagerKind, ResourceManager};

/// Which scheduler profile binds pods.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerProfile {
    /// Stock filter/score profile without preemption.
    KubeDefault,
    /// Stock profile plus priority preemption (EVOLVE's extension).
    Evolve,
    /// Bin-packing consolidation profile.
    Binpack,
}

impl SchedulerProfile {
    fn build(self) -> SchedulerFramework {
        match self {
            SchedulerProfile::KubeDefault => SchedulerFramework::kube_default(),
            SchedulerProfile::Evolve => SchedulerFramework::evolve_default(),
            SchedulerProfile::Binpack => SchedulerFramework::binpack(),
        }
    }
}

/// How the control plane comes back after a
/// [`FaultKind::ControllerCrash`](evolve_sim::FaultKind::ControllerCrash)
/// destroys the in-memory manager mid-run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecoveryStrategy {
    /// Load the most recent [`ControllerCheckpoint`](crate::ControllerCheckpoint)
    /// and resume; with per-tick checkpoints the resumed run is
    /// bit-identical to an uninterrupted one. Falls back to
    /// [`RecoveryStrategy::ColdReconstruct`] when no checkpoint exists or
    /// it fails to decode.
    #[default]
    Restore,
    /// Rebuild level-triggered from the live cluster: current replicas
    /// and granted requests become the hold-last-safe baseline, the PID
    /// re-engages bumplessly and slew-limited.
    ColdReconstruct,
    /// Fresh controller with spec defaults and no observation — the
    /// strawman a controller without recovery logic implements.
    NaiveReset,
}

impl RecoveryStrategy {
    /// A short label for reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            RecoveryStrategy::Restore => "restore",
            RecoveryStrategy::ColdReconstruct => "cold-reconstruct",
            RecoveryStrategy::NaiveReset => "naive-reset",
        }
    }
}

/// Full configuration of one experiment run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// The workload scenario.
    pub scenario: Scenario,
    /// The resource manager under test.
    pub manager: ManagerKind,
    /// The scheduler profile.
    pub scheduler: SchedulerProfile,
    /// Number of (uniform) nodes.
    pub nodes: usize,
    /// Node hardware shape.
    pub node_shape: NodeShape,
    /// Control-loop interval.
    pub control_interval: SimDuration,
    /// RNG seed.
    pub seed: u64,
    /// Record per-tick time series into the registry.
    pub record_series: bool,
    /// Faults injected during the run (empty by default).
    pub faults: FaultPlan,
    /// How the control plane recovers from a controller crash.
    pub recovery: RecoveryStrategy,
    /// Control ticks between controller checkpoints (only captured while
    /// a controller crash is armed and `recovery` is `Restore`).
    pub checkpoint_interval_ticks: u32,
    /// Decision-trace capture: ring capacity and optional JSONL dump.
    pub trace: TraceConfig,
    /// Run with the pre-batched (Box–Muller + global-majorant thinning)
    /// sampler streams, reproducing old fixtures bit-for-bit. Deprecated
    /// escape hatch; see DESIGN.md decision 11.
    pub legacy_sampling: bool,
    /// Run the chaos invariant battery ([`ChaosOracle`]) every control
    /// tick and report violations in [`RunOutcome::oracle`]. Off by
    /// default: the headline path pays nothing for the oracle. See
    /// DESIGN.md decision 12.
    pub oracle: bool,
    /// Cluster-level capacity arbitration: when `Some`, every control tick
    /// runs all per-app policy steps first, then arbitrates the summed
    /// demand against ready capacity (priority classes, weighted-fair
    /// clipping, shedding) before anything actuates. `None` (the default)
    /// keeps the unarbitrated path byte-identical to previous releases.
    /// See DESIGN.md decision 13.
    pub arbiter: Option<ArbiterConfig>,
    /// Route scheduling cycles through the incremental feasibility index
    /// (`true`, the default) or the naive full node scan (`false`). Both
    /// produce identical plans; the naive path exists as the equivalence
    /// baseline and for benchmarks quantifying the index. See DESIGN.md
    /// decision 14.
    pub indexed_scheduling: bool,
}

impl RunConfig {
    /// A run with the evaluation defaults: 20 nodes, 5 s control
    /// interval, the EVOLVE scheduler profile for EVOLVE managers and the
    /// stock profile for baselines.
    #[must_use]
    pub fn new(scenario: Scenario, manager: ManagerKind) -> Self {
        let scheduler = match manager {
            ManagerKind::Evolve | ManagerKind::EvolveWith(_) => SchedulerProfile::Evolve,
            _ => SchedulerProfile::KubeDefault,
        };
        RunConfig {
            scenario,
            manager,
            scheduler,
            nodes: 20,
            node_shape: NodeShape::default(),
            control_interval: SimDuration::from_secs(5),
            seed: 42,
            record_series: true,
            faults: FaultPlan::new(),
            recovery: RecoveryStrategy::default(),
            checkpoint_interval_ticks: 1,
            trace: TraceConfig::default(),
            legacy_sampling: false,
            oracle: false,
            arbiter: None,
            indexed_scheduling: true,
        }
    }

    /// Starts a builder from the evaluation defaults — the one
    /// configuration surface for every override:
    ///
    /// ```
    /// use evolve_core::{ManagerKind, RunConfig};
    /// use evolve_workload::Scenario;
    ///
    /// let config = RunConfig::builder(Scenario::headline(0.2), ManagerKind::Evolve)
    ///     .nodes(8)
    ///     .seed(7)
    ///     .record_series(false)
    ///     .build();
    /// assert_eq!(config.nodes, 8);
    /// ```
    #[must_use]
    pub fn builder(scenario: Scenario, manager: ManagerKind) -> RunConfigBuilder {
        RunConfigBuilder { config: RunConfig::new(scenario, manager) }
    }

    /// Starts a builder from a declarative [`ScenarioSpec`]: the spec's
    /// workload, cluster shape (node count and capacity), arbiter settings
    /// and fault plan are all applied, so a run configured from a
    /// `scenarios/*.toml` file needs no further overrides:
    ///
    /// ```
    /// use evolve_core::{ManagerKind, RunConfig};
    /// use evolve_workload::ScenarioSpec;
    ///
    /// let spec = ScenarioSpec::builtin("overload").unwrap();
    /// let config = RunConfig::from_spec(&spec, ManagerKind::Evolve).seed(7).build();
    /// assert_eq!(config.nodes, 4);
    /// assert!(config.arbiter.is_some());
    /// ```
    #[must_use]
    pub fn from_spec(spec: &ScenarioSpec, manager: ManagerKind) -> RunConfigBuilder {
        RunConfig::builder(spec.build(), manager).scenario_spec(spec)
    }
}

/// Converts declarative arbiter settings from a [`ScenarioSpec`] into the
/// control crate's [`ArbiterConfig`]. A free function because the
/// workload crate (where the spec lives) cannot depend on the control
/// crate.
#[must_use]
pub fn arbiter_from_spec(spec: &ArbiterSpec) -> ArbiterConfig {
    ArbiterConfig {
        headroom_fraction: spec.headroom_fraction,
        floor_fraction: spec.floor_fraction,
        hysteresis: spec.hysteresis,
        max_recovery_step: spec.max_recovery_step,
        demand_cap_ratio: spec.demand_cap_ratio,
    }
}

/// Converts a declarative fault list from a [`ScenarioSpec`] into the
/// simulator's [`FaultPlan`].
#[must_use]
pub fn faults_from_spec(faults: &[FaultSpec]) -> FaultPlan {
    let mut plan = FaultPlan::new();
    for fault in faults {
        plan = match *fault {
            FaultSpec::NodeCrash { node, at, downtime } => {
                plan.with_node_crash(NodeId::new(node as u32), at, downtime)
            }
            FaultSpec::ScrapeBlackout { at, duration } => plan.with_scrape_blackout(at, duration),
            FaultSpec::ControlStall { at, duration } => plan.with_control_stall(at, duration),
            FaultSpec::ControllerCrash { at } => plan.with_controller_crash(at),
            FaultSpec::ActuationDrop { at, duration } => plan.with_actuation_drop(at, duration),
        };
    }
    plan
}

/// Fluent construction of a [`RunConfig`], replacing the former `with_*`
/// method sprawl on the config itself. Obtain one from
/// [`RunConfig::builder`]; every setter consumes and returns the builder,
/// and [`build`](RunConfigBuilder::build) yields the finished config.
#[derive(Debug, Clone)]
pub struct RunConfigBuilder {
    config: RunConfig,
}

impl RunConfigBuilder {
    /// Overrides the node count.
    ///
    /// # Panics
    ///
    /// Panics when zero.
    #[must_use]
    pub fn nodes(mut self, nodes: usize) -> Self {
        assert!(nodes > 0, "need at least one node");
        self.config.nodes = nodes;
        self
    }

    /// Overrides the node hardware shape.
    #[must_use]
    pub fn node_shape(mut self, shape: NodeShape) -> Self {
        self.config.node_shape = shape;
        self
    }

    /// Overrides the control-loop interval.
    #[must_use]
    pub fn control_interval(mut self, interval: SimDuration) -> Self {
        self.config.control_interval = interval;
        self
    }

    /// Overrides the RNG seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Overrides the scheduler profile.
    #[must_use]
    pub fn scheduler(mut self, scheduler: SchedulerProfile) -> Self {
        self.config.scheduler = scheduler;
        self
    }

    /// Enables or disables per-tick series recording (disabling speeds up
    /// wide sweeps).
    #[must_use]
    pub fn record_series(mut self, record: bool) -> Self {
        self.config.record_series = record;
        self
    }

    /// Injects a fault plan into the run.
    #[must_use]
    pub fn faults(mut self, faults: FaultPlan) -> Self {
        self.config.faults = faults;
        self
    }

    /// Selects the controller crash-recovery strategy.
    #[must_use]
    pub fn recovery(mut self, recovery: RecoveryStrategy) -> Self {
        self.config.recovery = recovery;
        self
    }

    /// Overrides the checkpoint cadence (control ticks between captures).
    ///
    /// # Panics
    ///
    /// Panics when zero.
    #[must_use]
    pub fn checkpoint_interval_ticks(mut self, ticks: u32) -> Self {
        assert!(ticks > 0, "checkpoint interval must be at least one tick");
        self.config.checkpoint_interval_ticks = ticks;
        self
    }

    /// Configures decision-trace capture (ring capacity / JSONL dump).
    #[must_use]
    pub fn trace(mut self, trace: TraceConfig) -> Self {
        self.config.trace = trace;
        self
    }

    /// Selects the pre-batched sampler streams (Box–Muller demand noise,
    /// per-arrival global-majorant thinning). Old golden fixtures
    /// reproduce bit-for-bit under this flag; new runs should leave it
    /// off.
    #[must_use]
    pub fn legacy_sampling(mut self, legacy: bool) -> Self {
        self.config.legacy_sampling = legacy;
        self
    }

    /// Enables the chaos invariant battery: every control tick the
    /// [`ChaosOracle`] checks capacity conservation, pod conservation,
    /// gang atomicity, PID freeze under degraded signals, monotone time
    /// and (when checkpoints are captured) checkpoint→restore
    /// equivalence; violations land in [`RunOutcome::oracle`].
    #[must_use]
    pub fn oracle(mut self, oracle: bool) -> Self {
        self.config.oracle = oracle;
        self
    }

    /// Installs the cluster-level capacity arbiter: demand is arbitrated
    /// by priority class against ready capacity before actuation, and
    /// clipped or shed apps switch to admission-control load shedding.
    #[must_use]
    pub fn arbiter(mut self, config: ArbiterConfig) -> Self {
        self.config.arbiter = Some(config);
        self
    }

    /// Selects between index-pruned scheduling (`true`, the default) and
    /// the naive full node scan (`false`). Plans are identical either
    /// way; benchmarks flip this to quantify the feasibility index.
    #[must_use]
    pub fn indexed_scheduling(mut self, indexed: bool) -> Self {
        self.config.indexed_scheduling = indexed;
        self
    }

    /// Replaces the scenario, cluster shape, arbiter and fault plan from
    /// a declarative [`ScenarioSpec`]. Fields the spec does not model
    /// (seed, scheduler profile, recovery strategy, …) keep their current
    /// values; a spec without an `[arbiter]` table or `[[fault]]` entries
    /// clears any previously configured ones so the builder always
    /// mirrors the spec.
    #[must_use]
    pub fn scenario_spec(mut self, spec: &ScenarioSpec) -> Self {
        self.config.scenario = spec.build();
        self.config.nodes = spec.cluster.nodes;
        self.config.node_shape = NodeShape { capacity: spec.node_capacity() };
        self.config.arbiter = spec.arbiter.as_ref().map(arbiter_from_spec);
        self.config.faults = faults_from_spec(&spec.faults);
        self
    }

    /// Loads a scenario from a TOML file (see EXPERIMENTS.md § Authoring
    /// scenarios) and applies it via
    /// [`scenario_spec`](RunConfigBuilder::scenario_spec).
    ///
    /// # Errors
    ///
    /// Returns the typed [`ScenarioError`] when the file cannot be read,
    /// parsed or validated.
    pub fn scenario_file(self, path: impl AsRef<std::path::Path>) -> Result<Self, ScenarioError> {
        let spec = ScenarioSpec::from_file(path)?;
        Ok(self.scenario_spec(&spec))
    }

    /// Applies a builtin scenario by name (see
    /// [`evolve_workload::BUILTIN_NAMES`]) via
    /// [`scenario_spec`](RunConfigBuilder::scenario_spec).
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::UnknownScenario`] for an unknown name.
    pub fn scenario_named(self, name: &str) -> Result<Self, ScenarioError> {
        let spec = ScenarioSpec::builtin(name)?;
        Ok(self.scenario_spec(&spec))
    }

    /// Finishes the builder.
    #[must_use]
    pub fn build(self) -> RunConfig {
        self.config
    }
}

/// Per-application results of a run.
#[derive(Debug, Clone)]
pub struct AppSummary {
    /// The application.
    pub app: AppId,
    /// Name from the workload spec.
    pub name: String,
    /// The world it belongs to.
    pub world: WorldClass,
    /// Its overload priority class.
    pub priority: PriorityClass,
    /// Control windows evaluated against the PLO.
    pub windows: u64,
    /// Windows in violation.
    pub violations: u64,
    /// Mean relative excursion of violating windows.
    pub mean_severity: f64,
    /// Total requests completed (services) / records (batch) /
    /// iterations (HPC).
    pub completions: u64,
    /// Requests dropped on timeout.
    pub timeouts: u64,
    /// OOM kills suffered.
    pub oom_kills: u64,
    /// Requests rejected at admission while the capacity arbiter had the
    /// app shedding load (always zero when the arbiter is off).
    pub shed_requests: u64,
}

impl AppSummary {
    /// Fraction of windows in violation.
    #[must_use]
    pub fn violation_rate(&self) -> f64 {
        if self.windows == 0 {
            0.0
        } else {
            self.violations as f64 / self.windows as f64
        }
    }
}

/// Everything a run produced.
#[derive(Debug)]
pub struct RunOutcome {
    /// The manager label ("evolve", "kube-static", …).
    pub manager: String,
    /// The scenario name.
    pub scenario: String,
    /// Per-application summaries.
    pub apps: Vec<AppSummary>,
    /// Cluster utilization over the run.
    pub utilization: UtilizationSummary,
    /// Batch/HPC job outcomes.
    pub jobs: Vec<evolve_sim::JobOutcome>,
    /// Recorded time series (empty when `record_series` was off).
    pub registry: MetricRegistry,
    /// Failed in-place resizes (capacity contention).
    pub resize_failures: u64,
    /// Actuations suppressed by the manager's retry backoff.
    pub suppressed_actuations: u64,
    /// Actuations silently swallowed by an `ActuationDrop` fault.
    pub dropped_actuations: u64,
    /// Actuations deferred by an `ActuationDelay` fault.
    pub delayed_actuations: u64,
    /// Actuations applied to only part of the fleet by an
    /// `ActuationPartial` fault.
    pub partial_actuations: u64,
    /// The chaos oracle's verdict — `Some` only when
    /// [`RunConfig::oracle`] was enabled.
    pub oracle: Option<OracleReport>,
    /// Preemptions executed.
    pub preemptions: u64,
    /// Pod bindings executed.
    pub bindings: u64,
    /// Simulated horizon.
    pub horizon: SimDuration,
    /// Simulation clock when the run ended; always equal to the horizon,
    /// including when the horizon is not a multiple of the control
    /// interval (the final partial window is still simulated).
    pub end_time: SimTime,
    /// Engine events processed (simulator throughput accounting).
    pub events: u64,
    /// Controller restarts performed after injected controller crashes.
    pub controller_restarts: u64,
    /// App lookups that hit a desynced (unregistered) application and
    /// were skipped instead of panicking.
    pub desynced_apps: u64,
    /// Scheduler shadow-state pod lookups that found a pod missing from
    /// the cluster table and were skipped instead of panicking.
    pub stale_pod_lookups: u64,
    /// Arrival streams silently truncated by the legacy thinning sampler's
    /// bailout cap (always zero under batched sampling, which skips dead
    /// spans instead of giving up).
    pub thinning_bailouts: u64,
    /// Actuations whose grant the capacity arbiter clipped below the
    /// policy's request (zero when the arbiter is off).
    pub clipped_allocations: u64,
    /// Arbitration rounds that shed an app outright.
    pub shed_decisions: u64,
    /// Distinct apps the arbiter ever shed.
    pub shed_apps: u64,
    /// Total requests rejected at admission while shedding, across apps.
    pub shed_requests: u64,
    /// PLO violations recorded while the violating app was deliberately
    /// shedding load — reported separately from the headline violation
    /// count so a controlled brown-out is distinguishable from an
    /// uncontrolled one.
    pub violations_while_shedding: u64,
    /// Highest starvation age (consecutive arbitrations shed or below the
    /// grant floor) any app reached.
    pub starvation_watermark: u32,
    /// Engine-throughput accounting (the numbers BENCH.json reports).
    pub perf: RunPerf,
    /// The decision trace captured during the run (bounded ring; always
    /// on). Dump it with [`evolve_telemetry::trace::TraceRing::to_jsonl`]
    /// or configure [`TraceConfig::dump_to`] to write it automatically.
    pub trace: TraceRing,
}

/// Engine-throughput accounting for one run, surfaced by the bench
/// binaries and the perf-regression harness.
#[derive(Debug, Clone, Copy)]
pub struct RunPerf {
    /// Control ticks executed (stalled ticks included).
    pub ticks: u64,
    /// Wall-clock seconds the run took end to end.
    pub wall_secs: f64,
    /// Simulated seconds advanced per wall-clock second.
    pub sim_secs_per_wall_sec: f64,
    /// Engine events processed (wake-queue replacement makes this smaller
    /// than the naive event count for the same trajectory).
    pub events: u64,
    /// Peak concurrently running pods observed at control ticks.
    pub peak_running_pods: u32,
    /// Metric samples recorded through pre-interned [`MetricKey`]s —
    /// records that skipped the name hash/allocation entirely.
    pub fast_metric_records: u64,
    /// Wall nanoseconds spent in manager control ticks (from the
    /// decision-trace lifecycle spans).
    pub control_wall_ns: u64,
    /// Wall nanoseconds spent in scheduler cycles (from the
    /// decision-trace lifecycle spans).
    pub sched_wall_ns: u64,
    /// Filter-plugin invocations across all scheduler cycles. Under the
    /// naive scan this grows with pending × nodes; under the feasibility
    /// index only non-capacity filters on surviving candidates pay it.
    pub filter_evals: u64,
    /// Feasibility-index tree probes across all scheduler cycles (zero
    /// when the index is off). `filter_evals + feasibility_probes` is
    /// the indexed run's total feasibility work, comparable against the
    /// naive run's `filter_evals`.
    pub feasibility_probes: u64,
}

impl RunOutcome {
    /// Total violation windows across applications.
    #[must_use]
    pub fn total_violations(&self) -> u64 {
        self.apps.iter().map(|a| a.violations).sum()
    }

    /// Total evaluated windows across applications.
    #[must_use]
    pub fn total_windows(&self) -> u64 {
        self.apps.iter().map(|a| a.windows).sum()
    }

    /// Aggregate violation rate.
    #[must_use]
    pub fn total_violation_rate(&self) -> f64 {
        let w = self.total_windows();
        if w == 0 {
            0.0
        } else {
            self.total_violations() as f64 / w as f64
        }
    }

    /// Jobs that met their deadline / total jobs.
    #[must_use]
    pub fn deadline_hits(&self) -> (usize, usize) {
        let hits = self.jobs.iter().filter(|j| j.met_deadline()).count();
        (hits, self.jobs.len())
    }

    /// Per-world violation rates `(cloud, bigdata, hpc)`.
    #[must_use]
    pub fn violation_rate_by_world(&self) -> [f64; 3] {
        let mut windows = [0u64; 3];
        let mut violations = [0u64; 3];
        for a in &self.apps {
            let i = match a.world {
                WorldClass::Microservice => 0,
                WorldClass::BigData => 1,
                WorldClass::Hpc => 2,
            };
            windows[i] += a.windows;
            violations[i] += a.violations;
        }
        let mut out = [0.0; 3];
        for i in 0..3 {
            if windows[i] > 0 {
                out[i] = violations[i] as f64 / windows[i] as f64;
            }
        }
        out
    }
}

/// Per-app metric keys, interned once before the control loop so the
/// per-tick recording path neither allocates nor hashes names.
///
/// `p99_ms` stays lazy: non-service apps never report a p99, and eagerly
/// interning it would create an empty series they did not have before.
#[derive(Debug)]
struct AppSeriesKeys {
    p99_name: String,
    p99_ms: Option<MetricKey>,
    rate_rps: MetricKey,
    replicas: MetricKey,
    alloc_cpu: MetricKey,
    usage_cpu: MetricKey,
    timeouts: MetricKey,
}

impl AppSeriesKeys {
    fn new(registry: &mut MetricRegistry, app: AppId) -> Self {
        let prefix = format!("app{}", app.raw());
        AppSeriesKeys {
            p99_name: format!("{prefix}/p99_ms"),
            p99_ms: None,
            rate_rps: registry.key(&format!("{prefix}/rate_rps")),
            replicas: registry.key(&format!("{prefix}/replicas")),
            alloc_cpu: registry.key(&format!("{prefix}/alloc_cpu")),
            usage_cpu: registry.key(&format!("{prefix}/usage_cpu")),
            timeouts: registry.key(&format!("{prefix}/timeouts")),
        }
    }

    /// The (lazily interned) p99 series key.
    fn p99_key(&mut self, registry: &mut MetricRegistry) -> MetricKey {
        match self.p99_ms {
            Some(key) => key,
            None => {
                let key = registry.key(&self.p99_name);
                self.p99_ms = Some(key);
                key
            }
        }
    }
}

/// Cluster-level metric keys, interned once up front.
#[derive(Debug, Clone, Copy)]
struct ClusterSeriesKeys {
    allocated_cpu_share: MetricKey,
    used_cpu_share: MetricKey,
    pods_running: MetricKey,
    pods_pending: MetricKey,
    nodes_ready: MetricKey,
}

impl ClusterSeriesKeys {
    fn new(registry: &mut MetricRegistry) -> Self {
        ClusterSeriesKeys {
            allocated_cpu_share: registry.key("cluster/allocated_cpu_share"),
            used_cpu_share: registry.key("cluster/used_cpu_share"),
            pods_running: registry.key("cluster/pods_running"),
            pods_pending: registry.key("cluster/pods_pending"),
            nodes_ready: registry.key("cluster/nodes_ready"),
        }
    }
}

/// Runs one experiment end to end.
#[derive(Debug)]
pub struct ExperimentRunner {
    config: RunConfig,
}

impl ExperimentRunner {
    /// Creates a runner.
    #[must_use]
    pub fn new(config: RunConfig) -> Self {
        ExperimentRunner { config }
    }

    /// Executes the run to its horizon and collects the outcome.
    #[must_use]
    pub fn run(self) -> RunOutcome {
        let started = std::time::Instant::now();
        let cfg = self.config;
        let cluster_config = ClusterConfig::uniform(cfg.nodes, cfg.node_shape);
        let sampling =
            if cfg.legacy_sampling { SamplingMode::Legacy } else { SamplingMode::Batched };
        let sim_config = SimulationConfig { sampling, ..SimulationConfig::default() };
        let mut sim = Simulation::new(sim_config, cluster_config, &cfg.scenario.mix, cfg.seed);
        let mut manager = ResourceManager::new(cfg.manager.clone(), &sim);
        if let Some(arb) = cfg.arbiter {
            manager.set_arbiter(arb);
        }
        let scheduler = cfg.scheduler.build().with_index(cfg.indexed_scheduling);
        let mut registry = MetricRegistry::new();
        let mut util = UtilizationAccount::new(sim.cluster().total_allocatable());
        let mut preemptions = 0u64;
        let mut bindings = 0u64;
        let mut stale_pod_lookups = 0u64;
        let mut filter_evals = 0u64;
        let mut feasibility_probes = 0u64;
        // Decision trace: always on, bounded by the ring capacity. The
        // ring only *reads* controller and scheduler state, so capture
        // cannot perturb the simulated trajectory.
        let mut trace = TraceRing::new(cfg.trace.capacity);
        let mut control_wall_ns = 0u64;
        let mut sched_wall_ns = 0u64;
        // Lifetime (completions, timeouts, oom, shed) per app.
        let mut totals: std::collections::HashMap<AppId, (u64, u64, u64, u64)> =
            std::collections::HashMap::new();

        let horizon = SimTime::ZERO + cfg.scenario.horizon;
        let dt = cfg.control_interval;

        // Fault injection: realize the plan (scheduled plus stochastic)
        // once, arm node crash/recovery events on the simulator, and
        // consult the injector tick-by-tick for scrape blackouts, metric
        // noise and control-plane stalls.
        let mut injector = if cfg.faults.is_empty() {
            None
        } else {
            let inj = FaultInjector::new(&cfg.faults, cfg.seed, cfg.scenario.horizon, cfg.nodes)
                .with_sampling(sampling);
            inj.arm(&mut sim);
            Some(inj)
        };

        // The realized fault timeline (scheduled plus stochastic) goes
        // into the decision trace up front so `trace_explain` can
        // correlate control anomalies with the faults active around them.
        // A run without faults pushes nothing — the trace is unchanged.
        if let Some(inj) = &injector {
            for ev in inj.timeline() {
                trace.push(TraceEvent::Fault(fault_trace(&ev)));
            }
        }
        // `faults/active` series key, interned lazily so fault-free runs
        // (the golden fixtures) record exactly the series they always did.
        let faults_active_key = match (&injector, cfg.record_series) {
            (Some(_), true) => Some(registry.key("faults/active")),
            _ => None,
        };

        // The chaos invariant battery: strictly observational (reads the
        // sim/cluster/trace between ticks), so enabling it cannot perturb
        // the simulated trajectory — only slow the run down.
        let mut oracle = if cfg.oracle { Some(ChaosOracle::new()) } else { None };
        let mut newly_bound: Vec<PodId> = Vec::new();

        // Series ids are interned once up front; the per-tick recording
        // path below neither builds strings nor hashes names.
        let cluster_keys =
            if cfg.record_series { Some(ClusterSeriesKeys::new(&mut registry)) } else { None };
        let mut series_keys: std::collections::HashMap<AppId, AppSeriesKeys> = if cfg.record_series
        {
            sim.apps().iter().map(|s| (s.id, AppSeriesKeys::new(&mut registry, s.id))).collect()
        } else {
            std::collections::HashMap::new()
        };

        // Initial scheduling pass so t=0 pods place immediately. The
        // feasibility index lives here, beside the backoff ledger, and is
        // carried across every cycle of the run: each pass diffs cluster
        // version counters instead of rebuilding the shadow.
        let mut backoff = RequeueBackoff::new();
        let mut feas_index = FeasibilityIndex::new();
        Self::schedule_pass(
            &scheduler,
            &mut backoff,
            &mut feas_index,
            &mut sim,
            &mut preemptions,
            &mut bindings,
            &mut stale_pod_lookups,
            &mut filter_evals,
            &mut feasibility_probes,
            &mut trace,
            oracle.as_ref().map(|_| &mut newly_bound),
        );
        if let Some(orc) = oracle.as_mut() {
            orc.check_gang_atomicity(&sim, &newly_bound);
            orc.check_tick(&sim);
            orc.scan_trace(&trace);
        }

        // Crash recovery: checkpoints are captured only while a controller
        // crash is actually armed and the strategy will consume them.
        let crash_armed =
            injector.as_ref().is_some_and(|i| !i.controller_crash_schedule().is_empty());
        let capture_checkpoints = crash_armed && cfg.recovery == RecoveryStrategy::Restore;
        let mut checkpoint = if capture_checkpoints {
            Some(manager.checkpoint(SimTime::ZERO, &backoff))
        } else {
            None
        };
        let checkpoint_every = u64::from(cfg.checkpoint_interval_ticks.max(1));
        let mut live_ticks = 0u64;
        let mut last_crash_check = SimTime::ZERO;
        let mut controller_restarts = 0u64;

        let mut window_start = SimTime::ZERO;
        let mut carried_secs = 0.0;
        let mut ticks = 0u64;
        let mut peak_running = 0u32;
        while window_start < horizon {
            ticks += 1;
            // The final window may be truncated when the horizon is not a
            // multiple of the control interval; the manager sees the
            // actual elapsed seconds so per-window rates stay correct.
            let tick_end = (window_start + dt).min(horizon);
            sim.run_until(tick_end);
            // A stalled control plane skips this tick entirely — no
            // scrape, no decisions, no scheduling pass. The skipped
            // seconds carry into the next live tick so per-window rates
            // stay correct.
            if injector.as_ref().is_some_and(|i| i.controller_stalled(tick_end)) {
                carried_secs += (tick_end - window_start).as_secs_f64();
                window_start = tick_end;
                continue;
            }
            let window_secs = (tick_end - window_start).as_secs_f64() + carried_secs;
            carried_secs = 0.0;
            // Controller crash: the in-memory manager (and the scheduler's
            // requeue ledger, which lives in the same process) is
            // destroyed; rebuild it per the configured strategy before
            // this tick's decisions. The check interval is half-open
            // (last check, tick end] and the cursor does not advance
            // through stalled ticks, so every crash is handled exactly
            // once at the first live tick after it.
            if crash_armed
                && injector
                    .as_ref()
                    .is_some_and(|i| i.controller_crashed_in(last_crash_check, tick_end))
            {
                controller_restarts += 1;
                let restored = match cfg.recovery {
                    RecoveryStrategy::Restore => checkpoint.as_ref().and_then(|ck| {
                        ResourceManager::restore(cfg.manager.clone(), &sim, ck)
                            .ok()
                            .map(|mb| (mb, ck.at))
                    }),
                    _ => None,
                };
                match (cfg.recovery, restored) {
                    (RecoveryStrategy::Restore, Some(((m, b), ck_at))) => {
                        manager = m;
                        backoff = b;
                        // With per-tick checkpoints the image is exactly
                        // one window old and the resumed run is
                        // bit-identical; a staler image leaves a gap the
                        // manager must age across (rates over real
                        // elapsed time, slew-limited re-engagement).
                        let gap_extra = (tick_end - ck_at).as_secs_f64() - window_secs;
                        if gap_extra > 1e-9 {
                            manager.age_after_gap(&sim, gap_extra);
                        }
                    }
                    // Restore with no (or corrupt) checkpoint degrades to
                    // cold reconstruction rather than naive reset.
                    (RecoveryStrategy::Restore | RecoveryStrategy::ColdReconstruct, _) => {
                        manager = ResourceManager::cold_reconstruct(cfg.manager.clone(), &sim);
                        backoff = RequeueBackoff::new();
                        // A checkpoint carries the arbiter; the fresh
                        // managers must have it re-installed (empty state:
                        // grant fractions re-learn from the live cluster).
                        if let Some(arb) = cfg.arbiter {
                            manager.set_arbiter(arb);
                        }
                    }
                    (RecoveryStrategy::NaiveReset, _) => {
                        manager = ResourceManager::naive_reset(cfg.manager.clone(), &sim);
                        backoff = RequeueBackoff::new();
                        if let Some(arb) = cfg.arbiter {
                            manager.set_arbiter(arb);
                        }
                    }
                }
            }
            last_crash_check = tick_end;
            let control_started = std::time::Instant::now();
            let windows =
                manager.tick_traced(&mut sim, window_secs, injector.as_mut(), Some(&mut trace));
            let control_ns =
                u64::try_from(control_started.elapsed().as_nanos()).unwrap_or(u64::MAX);
            control_wall_ns += control_ns;
            trace.push(TraceEvent::Span(SpanTrace {
                tick: ticks,
                at: tick_end,
                kind: SpanKind::Control,
                wall_ns: control_ns,
            }));
            let sched_started = std::time::Instant::now();
            newly_bound.clear();
            Self::schedule_pass(
                &scheduler,
                &mut backoff,
                &mut feas_index,
                &mut sim,
                &mut preemptions,
                &mut bindings,
                &mut stale_pod_lookups,
                &mut filter_evals,
                &mut feasibility_probes,
                &mut trace,
                oracle.as_ref().map(|_| &mut newly_bound),
            );
            let sched_ns = u64::try_from(sched_started.elapsed().as_nanos()).unwrap_or(u64::MAX);
            sched_wall_ns += sched_ns;
            trace.push(TraceEvent::Span(SpanTrace {
                tick: ticks,
                at: tick_end,
                kind: SpanKind::Sched,
                wall_ns: sched_ns,
            }));
            let record_started = std::time::Instant::now();

            // Utilization accounting: allocation from the cluster, usage
            // from the windows.
            let mut used = ResourceVec::ZERO;
            for (app, w) in &windows {
                used += w.usage;
                let entry = totals.entry(*app).or_insert((0, 0, 0, 0));
                entry.0 += w.completions;
                entry.1 += w.timeouts;
                entry.2 += w.oom_kills;
                entry.3 += w.shed_requests;
            }
            let snap = sim.snapshot();
            peak_running = peak_running.max(snap.pods_running);
            util.record(snap.at, snap.allocated, used.min(&snap.allocatable));

            if let Some(orc) = oracle.as_mut() {
                orc.check_gang_atomicity(&sim, &newly_bound);
                orc.check_tick(&sim);
                orc.scan_trace(&trace);
                // Arbitration invariants: capacity conservation, priority
                // inversion, bounded starvation. The sim crate cannot see
                // control types, so the outcomes are flattened into plain
                // per-app entries here.
                if !manager.last_arbitration().is_empty() {
                    let floor_frac = manager.arbiter().map_or(0.5, |a| a.config().floor_fraction);
                    let entries: Vec<ArbitrationCheck> = manager
                        .last_arbitration()
                        .iter()
                        .map(|o| ArbitrationCheck {
                            app: o.app,
                            class: o.class,
                            requested: o.requested,
                            granted: o.granted,
                            shed: o.is_shed(),
                            slew_limited: matches!(
                                o.decision,
                                GrantDecision::Clipped(ClipReason::SlewLimited)
                            ),
                            below_floor: !(o.requested * floor_frac).fits_within(&o.granted),
                            starvation_age: o.starvation_age,
                        })
                        .collect();
                    orc.check_arbitration(tick_end, &entries, sim.cluster().total_allocatable());
                }
            }
            if let (Some(key), Some(inj)) = (faults_active_key, injector.as_ref()) {
                registry.record_key(key, snap.at, inj.active_count(snap.at) as f64);
            }

            if let Some(ck) = cluster_keys {
                let t = snap.at;
                registry.record_key(ck.allocated_cpu_share, t, {
                    let a = snap.allocatable.cpu();
                    if a > 0.0 {
                        snap.allocated.cpu() / a
                    } else {
                        0.0
                    }
                });
                registry.record_key(ck.used_cpu_share, t, {
                    let a = snap.allocatable.cpu();
                    if a > 0.0 {
                        used.cpu() / a
                    } else {
                        0.0
                    }
                });
                registry.record_key(ck.pods_running, t, f64::from(snap.pods_running));
                registry.record_key(ck.pods_pending, t, f64::from(snap.pods_pending));
                registry.record_key(ck.nodes_ready, t, f64::from(snap.nodes_ready));
                for (app, w) in &windows {
                    let keys = series_keys
                        .entry(*app)
                        .or_insert_with(|| AppSeriesKeys::new(&mut registry, *app));
                    if let Some(p99) = w.p99_ms {
                        let key = keys.p99_key(&mut registry);
                        registry.record_key(key, t, p99);
                    }
                    registry.record_key(keys.rate_rps, t, w.arrivals as f64 / window_secs);
                    registry.record_key(keys.replicas, t, f64::from(w.running_replicas));
                    registry.record_key(keys.alloc_cpu, t, w.alloc.cpu());
                    registry.record_key(keys.usage_cpu, t, w.usage.cpu());
                    registry.record_key(keys.timeouts, t, w.timeouts as f64);
                }
            }
            trace.push(TraceEvent::Span(SpanTrace {
                tick: ticks,
                at: tick_end,
                kind: SpanKind::Record,
                wall_ns: u64::try_from(record_started.elapsed().as_nanos()).unwrap_or(u64::MAX),
            }));
            live_ticks += 1;
            if capture_checkpoints && live_ticks.is_multiple_of(checkpoint_every) {
                let ck = manager.checkpoint(tick_end, &backoff);
                // Checkpoint→restore equivalence: while a crash is armed,
                // every captured image must restore to a manager whose
                // own re-checkpoint is byte-identical — otherwise the
                // post-crash trajectory silently diverges from the
                // uninterrupted one.
                if let Some(orc) = oracle.as_mut() {
                    match ResourceManager::restore(cfg.manager.clone(), &sim, &ck) {
                        Ok((restored, rb)) => {
                            let again = restored.checkpoint(ck.at, &rb);
                            if again.to_bytes() != ck.to_bytes() {
                                orc.record_violation(
                                    tick_end,
                                    "checkpoint_equivalence",
                                    "restored manager re-checkpoints to different bytes".into(),
                                );
                            }
                        }
                        Err(err) => orc.record_violation(
                            tick_end,
                            "checkpoint_equivalence",
                            format!("captured checkpoint failed to restore: {err}"),
                        ),
                    }
                }
                checkpoint = Some(ck);
            }
            window_start = tick_end;
        }
        let utilization = util.finish(sim.now());

        // Final per-app summaries need lifetime counters; accumulate from
        // the trackers plus a final window harvest.
        let statuses: Vec<evolve_sim::AppStatus> = sim.apps().to_vec();
        let mut apps = Vec::with_capacity(statuses.len());
        let mut desynced_summaries = 0u64;
        for status in &statuses {
            let (completions, timeouts, oom_kills, shed_requests) =
                totals.get(&status.id).copied().unwrap_or((0, 0, 0, 0));
            // A desynced app (unknown to the restarted manager) still gets
            // a summary from the lifetime counters; its PLO ledger is
            // simply empty rather than the whole report panicking.
            let (windows, violations, mean_severity) = match manager.tracker(status.id) {
                Some(t) => (t.windows(), t.violations(), t.mean_severity()),
                None => {
                    desynced_summaries += 1;
                    (0, 0, 0.0)
                }
            };
            apps.push(AppSummary {
                app: status.id,
                name: status.name.clone(),
                world: status.world,
                priority: status.priority,
                windows,
                violations,
                mean_severity,
                completions,
                timeouts,
                oom_kills,
                shed_requests,
            });
        }

        let shed_requests_total: u64 = apps.iter().map(|a| a.shed_requests).sum();
        let wall_secs = started.elapsed().as_secs_f64();
        let perf = RunPerf {
            ticks,
            wall_secs,
            sim_secs_per_wall_sec: if wall_secs > 0.0 {
                sim.now().as_secs_f64() / wall_secs
            } else {
                0.0
            },
            events: sim.events_processed(),
            peak_running_pods: peak_running,
            fast_metric_records: registry.fast_path_records(),
            control_wall_ns,
            sched_wall_ns,
            filter_evals,
            feasibility_probes,
        };

        // Deterministic JSONL dump (wall-clock excluded): two same-seed
        // runs write byte-identical files.
        if let Some(path) = &cfg.trace.dump {
            if let Err(err) = std::fs::write(path, trace.to_jsonl()) {
                eprintln!("warning: failed to write trace dump {}: {err}", path.display());
            }
        }

        let oracle_report = oracle.map(|o| o.finish(&sim, &trace));

        RunOutcome {
            manager: manager.label(),
            scenario: cfg.scenario.name.clone(),
            apps,
            utilization,
            jobs: sim.job_outcomes(),
            registry,
            resize_failures: manager.resize_failures(),
            suppressed_actuations: manager.suppressed_actuations(),
            dropped_actuations: manager.dropped_actuations(),
            delayed_actuations: manager.delayed_actuations(),
            partial_actuations: manager.partial_actuations(),
            oracle: oracle_report,
            preemptions,
            bindings,
            horizon: cfg.scenario.horizon,
            end_time: sim.now(),
            events: sim.events_processed(),
            controller_restarts,
            desynced_apps: manager.desynced_apps() + desynced_summaries,
            stale_pod_lookups,
            thinning_bailouts: sim.thinning_bailouts(),
            clipped_allocations: manager.clipped_allocations(),
            shed_decisions: manager.shed_decisions(),
            shed_apps: manager.shed_apps(),
            shed_requests: shed_requests_total,
            violations_while_shedding: manager.violations_while_shedding(),
            starvation_watermark: manager.starvation_watermark(),
            perf,
            trace,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn schedule_pass(
        scheduler: &SchedulerFramework,
        backoff: &mut RequeueBackoff,
        index: &mut FeasibilityIndex,
        sim: &mut Simulation,
        preemptions: &mut u64,
        bindings: &mut u64,
        stale_pod_lookups: &mut u64,
        filter_evals: &mut u64,
        feasibility_probes: &mut u64,
        trace: &mut TraceRing,
        mut bound_out: Option<&mut Vec<PodId>>,
    ) {
        let plan =
            scheduler.schedule_cycle_carried(sim.cluster(), backoff, index, sim.now(), trace);
        *stale_pod_lookups += plan.stale_pod_lookups;
        *filter_evals += plan.filter_evals;
        *feasibility_probes += plan.index_probes;
        for victim in &plan.preemptions {
            if sim.preempt_pod(*victim).is_ok() {
                *preemptions += 1;
            }
        }
        for (pod, node) in &plan.bindings {
            if sim.bind_pod(*pod, *node).is_ok() {
                *bindings += 1;
                if let Some(out) = bound_out.as_deref_mut() {
                    out.push(*pod);
                }
            }
        }
    }
}

/// Flattens one realized fault event into the label/number shape the
/// telemetry crate stores (it must not depend on simulator types).
fn fault_trace(ev: &evolve_sim::FaultEvent) -> FaultTrace {
    let (duration_s, node, app) = match &ev.kind {
        FaultKind::NodeCrash { node, downtime } => {
            (downtime.map(|d| d.as_secs_f64()), Some(node.as_usize() as u32), None)
        }
        FaultKind::ScrapeBlackout { app, duration } => (Some(duration.as_secs_f64()), None, *app),
        FaultKind::MetricNoise { app, duration, .. } => (Some(duration.as_secs_f64()), None, *app),
        FaultKind::ControlStall { duration }
        | FaultKind::ActuationDrop { duration }
        | FaultKind::ActuationDelay { duration, .. }
        | FaultKind::ActuationPartial { duration, .. } => {
            (Some(duration.as_secs_f64()), None, None)
        }
        FaultKind::ControllerCrash => (None, None, None),
        FaultKind::NodeFlap { node, cycles, period } => {
            (Some((*period * u64::from(*cycles)).as_secs_f64()), Some(node.as_usize() as u32), None)
        }
    };
    FaultTrace { at: ev.at, kind: ev.kind.label(), duration_s, node, app }
}
