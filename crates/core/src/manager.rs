//! The resource manager: one policy instance per application, PLO
//! violation accounting, and actuation against the simulated cluster.

use std::collections::{BTreeSet, HashMap};

use evolve_control::{
    ArbiterConfig, ArbiterRequest, ArbitrationOutcome, CapacityArbiter, GrantDecision,
};
use evolve_scheduler::RequeueBackoff;
use evolve_sim::{AppWindow, FaultInjector, Simulation};
use evolve_telemetry::trace::{
    ActuationOutcome, ArbitrationTrace, ControlTrace, TraceEvent, TraceRing,
};
use evolve_telemetry::{PloBound, PloTracker};
use evolve_types::codec::{Decoder, Encoder};
use evolve_types::{AppId, Error, Resource, ResourceVec, Result, SimDuration, SimTime};
use evolve_workload::{PloSpec, WorldClass};

use crate::baselines::{HpaPolicy, StaticPolicy, VpaPolicy};
use crate::checkpoint::{AppCheckpoint, ControllerCheckpoint};
use crate::evolve_policy::{EvolvePolicy, EvolvePolicyConfig};
use crate::policy::{
    AutoscalePolicy, ObservedAppState, PolicyDecision, PolicyInput, SignalQuality,
};

/// Which resource-management system runs the cluster.
#[derive(Debug, Clone, PartialEq)]
pub enum ManagerKind {
    /// The paper's system: multi-resource adaptive PID per application.
    Evolve,
    /// EVOLVE with a custom policy configuration (ablations).
    EvolveWith(EvolvePolicyConfig),
    /// Stock Kubernetes: static requests, static replicas.
    KubeStatic,
    /// Threshold HPA on CPU utilization.
    Hpa {
        /// Target CPU utilization in `(0, 1]`.
        target_utilization: f64,
    },
    /// VPA-like percentile vertical scaler.
    Vpa {
        /// Relative headroom above observed usage.
        margin: f64,
    },
}

impl ManagerKind {
    /// A short label for reports.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            ManagerKind::Evolve => "evolve".into(),
            ManagerKind::EvolveWith(cfg) => {
                if cfg.cpu_only {
                    "evolve-cpu-only".into()
                } else if cfg.fixed_gains {
                    "evolve-fixed-gains".into()
                } else if !cfg.predictive {
                    "evolve-reactive".into()
                } else {
                    "evolve-custom".into()
                }
            }
            ManagerKind::KubeStatic => "kube-static".into(),
            ManagerKind::Hpa { .. } => "hpa".into(),
            ManagerKind::Vpa { .. } => "vpa".into(),
        }
    }
}

/// Per-application record the manager keeps.
struct ManagedApp {
    policy: Box<dyn AutoscalePolicy>,
    tracker: PloTracker,
    world: WorldClass,
    /// Failed in-place resizes on the previous tick.
    last_resize_failures: u32,
    /// Last successfully scraped window — replayed (as `Stale`) while a
    /// blackout blocks scrapes.
    last_window: Option<AppWindow>,
    /// Control seconds accumulated while scrapes were dark; folded into
    /// the first post-blackout tick so rates are computed over the real
    /// elapsed time.
    pending_dt: f64,
    /// Consecutive actuations that reported resize failures.
    failure_streak: u32,
    /// Tick index before which an unchanged failing target is suppressed.
    backoff_until: u64,
    /// The decision last actuated (for the retry-backoff comparison).
    last_decision: Option<PolicyDecision>,
}

/// Fraction of its desired per-replica allocation a shed app is squeezed
/// to: enough to stay alive and answer the trickle the bounded shed queue
/// still admits, small enough that shedding actually frees capacity for
/// the granted classes.
const SHED_KEEPALIVE_FRACTION: f64 = 0.05;

/// The control plane: scrapes windows, evaluates PLOs, runs policies and
/// actuates.
pub struct ResourceManager {
    kind: ManagerKind,
    apps: HashMap<AppId, ManagedApp>,
    /// Failed in-place resizes (capacity contention diagnostics).
    resize_failures: u64,
    /// Control ticks executed.
    ticks: u64,
    /// Actuations skipped by the retry-backoff (the target had just
    /// failed and had not changed).
    suppressed_actuations: u64,
    /// Control-tick lookups that referenced an application the manager no
    /// longer tracks (desync between simulation and control plane) — each
    /// one was skipped instead of panicking.
    desynced_apps: u64,
    /// Actuations swallowed by an `ActuationDrop` fault. The controller
    /// believes they succeeded — exactly the silent-failure mode a real
    /// API server outage produces.
    dropped_actuations: u64,
    /// Actuations deferred by an `ActuationDelay` fault.
    delayed_actuations: u64,
    /// Actuations applied to only a fraction of replicas by an
    /// `ActuationPartial` fault.
    partial_actuations: u64,
    /// Delayed actuations waiting for their release time: `(due, app,
    /// decision)`, applied at the start of the first tick at or past
    /// `due`. Push order follows the deterministic app iteration order,
    /// so the queue itself is deterministic.
    pending_actuations: Vec<(SimTime, AppId, PolicyDecision)>,
    /// Cluster-level capacity arbiter; `None` (the default) leaves the
    /// control path exactly as before — per-app decisions actuate
    /// unarbitrated.
    arbiter: Option<CapacityArbiter>,
    /// Outcomes of the most recent arbitration round (empty when the
    /// arbiter is off or the last tick had no decided targets).
    last_arbitration: Vec<ArbitrationOutcome>,
    /// Actuations whose grant was clipped below the policy's request.
    clipped_allocations: u64,
    /// Arbitration rounds that shed an app outright (no actuation).
    shed_decisions: u64,
    /// Distinct apps the arbiter has ever shed.
    shed_app_ids: BTreeSet<AppId>,
    /// Highest starvation age any app reached under arbitration.
    starvation_watermark: u32,
    /// PLO violations recorded from windows in which the app was actively
    /// shedding load (`shed_requests > 0`) — reported separately so a
    /// deliberate brown-out is not mistaken for an uncontrolled one.
    violations_while_shedding: u64,
}

impl std::fmt::Debug for ResourceManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResourceManager")
            .field("kind", &self.kind.label())
            .field("apps", &self.apps.len())
            .finish()
    }
}

impl ResourceManager {
    /// Creates the manager and one policy instance per application in the
    /// simulation.
    #[must_use]
    pub fn new(kind: ManagerKind, sim: &Simulation) -> Self {
        let mut apps = HashMap::new();
        for status in sim.apps() {
            let is_job = status.world != WorldClass::Microservice;
            let initial_replicas = 1;
            let policy: Box<dyn AutoscalePolicy> = match &kind {
                ManagerKind::Evolve => Box::new(EvolvePolicy::new(
                    EvolvePolicyConfig::default(),
                    initial_replicas,
                    is_job,
                )),
                ManagerKind::EvolveWith(cfg) => {
                    Box::new(EvolvePolicy::new(*cfg, initial_replicas, is_job))
                }
                ManagerKind::KubeStatic => Box::new(StaticPolicy),
                ManagerKind::Hpa { target_utilization } => {
                    if is_job {
                        // HPA does not manage jobs; they run statically.
                        Box::new(StaticPolicy)
                    } else {
                        Box::new(HpaPolicy::new(
                            *target_utilization,
                            // HPA keeps the user-provided request; the
                            // runner passes the initial alloc via the
                            // window, so seed with a common default.
                            ResourceVec::new(1_000.0, 1_024.0, 50.0, 50.0),
                            2,
                            64,
                        ))
                    }
                }
                ManagerKind::Vpa { margin } => {
                    if is_job {
                        Box::new(StaticPolicy)
                    } else {
                        Box::new(VpaPolicy::new(
                            *margin,
                            ResourceVec::new(100.0, 256.0, 5.0, 5.0),
                            ResourceVec::new(8_000.0, 16_384.0, 250.0, 600.0),
                            2,
                        ))
                    }
                }
            };
            let bound = if status.plo.upper_bound() { PloBound::Upper } else { PloBound::Lower };
            apps.insert(
                status.id,
                ManagedApp {
                    policy,
                    tracker: PloTracker::new(status.plo.target().max(1e-9), bound),
                    world: status.world,
                    last_resize_failures: 0,
                    last_window: None,
                    pending_dt: 0.0,
                    failure_streak: 0,
                    backoff_until: 0,
                    last_decision: None,
                },
            );
        }
        ResourceManager {
            kind,
            apps,
            resize_failures: 0,
            ticks: 0,
            suppressed_actuations: 0,
            desynced_apps: 0,
            dropped_actuations: 0,
            delayed_actuations: 0,
            partial_actuations: 0,
            pending_actuations: Vec::new(),
            arbiter: None,
            last_arbitration: Vec::new(),
            clipped_allocations: 0,
            shed_decisions: 0,
            shed_app_ids: BTreeSet::new(),
            starvation_watermark: 0,
            violations_while_shedding: 0,
        }
    }

    /// Installs a cluster-level capacity arbiter: every subsequent control
    /// tick runs all per-app policy steps first, then arbitrates the
    /// summed demand against ready capacity before anything actuates.
    pub fn set_arbiter(&mut self, config: ArbiterConfig) {
        self.arbiter = Some(CapacityArbiter::new(config));
    }

    /// The installed arbiter, if any.
    #[must_use]
    pub fn arbiter(&self) -> Option<&CapacityArbiter> {
        self.arbiter.as_ref()
    }

    /// Outcomes of the most recent arbitration round (empty when the
    /// arbiter is off).
    #[must_use]
    pub fn last_arbitration(&self) -> &[ArbitrationOutcome] {
        &self.last_arbitration
    }

    /// Actuations whose grant was clipped below the policy's request.
    #[must_use]
    pub fn clipped_allocations(&self) -> u64 {
        self.clipped_allocations
    }

    /// Arbitration rounds that shed an app outright.
    #[must_use]
    pub fn shed_decisions(&self) -> u64 {
        self.shed_decisions
    }

    /// Distinct apps the arbiter has ever shed.
    #[must_use]
    pub fn shed_apps(&self) -> u64 {
        self.shed_app_ids.len() as u64
    }

    /// Highest starvation age any app reached under arbitration.
    #[must_use]
    pub fn starvation_watermark(&self) -> u32 {
        self.starvation_watermark
    }

    /// PLO violations recorded while the violating app was shedding load.
    #[must_use]
    pub fn violations_while_shedding(&self) -> u64 {
        self.violations_while_shedding
    }

    /// Looks up an application's control record, returning the typed
    /// error a desynced id produces (instead of panicking).
    fn managed_mut(apps: &mut HashMap<AppId, ManagedApp>, app: AppId) -> Result<&mut ManagedApp> {
        apps.get_mut(&app).ok_or(Error::UnknownApp(app))
    }

    /// Captures the complete mutable state of the control plane (plus the
    /// scheduler's requeue-backoff ledger, which lives with the runner)
    /// into one deterministic image. Apps are sorted by id so identical
    /// control states always produce identical bytes.
    #[must_use]
    pub fn checkpoint(&self, at: SimTime, backoff: &RequeueBackoff) -> ControllerCheckpoint {
        let mut apps: Vec<(AppId, AppCheckpoint)> = self
            .apps
            .iter()
            .map(|(id, m)| {
                let mut enc = Encoder::new();
                m.policy.checkpoint(&mut enc);
                (
                    *id,
                    AppCheckpoint {
                        policy_blob: enc.into_bytes(),
                        tracker: m.tracker.clone(),
                        last_window: m.last_window.clone(),
                        pending_dt: m.pending_dt,
                        failure_streak: m.failure_streak,
                        backoff_until: m.backoff_until,
                        last_decision: m.last_decision,
                        last_resize_failures: m.last_resize_failures,
                    },
                )
            })
            .collect();
        apps.sort_by_key(|&(id, _)| id);
        ControllerCheckpoint {
            at,
            ticks: self.ticks,
            resize_failures: self.resize_failures,
            suppressed_actuations: self.suppressed_actuations,
            dropped_actuations: self.dropped_actuations,
            delayed_actuations: self.delayed_actuations,
            partial_actuations: self.partial_actuations,
            pending_actuations: self.pending_actuations.clone(),
            apps,
            scheduler_backoff: backoff.clone(),
            arbiter: self.arbiter.clone(),
            clipped_allocations: self.clipped_allocations,
            shed_decisions: self.shed_decisions,
            shed_app_ids: self.shed_app_ids.iter().copied().collect(),
            starvation_watermark: self.starvation_watermark,
            violations_while_shedding: self.violations_while_shedding,
        }
    }

    /// Rebuilds a manager from a checkpoint: constructs fresh policies
    /// (static config comes from `kind` and the workload, exactly as at
    /// boot) and then overwrites every piece of mutable state with the
    /// captured values. A checkpoint taken at the end of tick *t* restores
    /// a manager bit-identical to the live one entering tick *t + 1*.
    /// Returns the manager together with the captured scheduler backoff.
    ///
    /// Checkpointed apps the simulation no longer knows are skipped and
    /// counted in [`ResourceManager::desynced_apps`]; apps the simulation
    /// gained since the capture keep their fresh boot state.
    ///
    /// # Errors
    ///
    /// Returns [`Error::CorruptCheckpoint`] when a policy blob fails to
    /// decode (wrong policy tag, truncation, trailing bytes).
    pub fn restore(
        kind: ManagerKind,
        sim: &Simulation,
        ck: &ControllerCheckpoint,
    ) -> Result<(Self, RequeueBackoff)> {
        let mut mgr = ResourceManager::new(kind, sim);
        mgr.ticks = ck.ticks;
        mgr.resize_failures = ck.resize_failures;
        mgr.suppressed_actuations = ck.suppressed_actuations;
        mgr.dropped_actuations = ck.dropped_actuations;
        mgr.delayed_actuations = ck.delayed_actuations;
        mgr.partial_actuations = ck.partial_actuations;
        mgr.pending_actuations = ck.pending_actuations.clone();
        mgr.arbiter = ck.arbiter.clone();
        mgr.clipped_allocations = ck.clipped_allocations;
        mgr.shed_decisions = ck.shed_decisions;
        mgr.shed_app_ids = ck.shed_app_ids.iter().copied().collect();
        mgr.starvation_watermark = ck.starvation_watermark;
        mgr.violations_while_shedding = ck.violations_while_shedding;
        for (id, app_ck) in &ck.apps {
            let Some(m) = mgr.apps.get_mut(id) else {
                mgr.desynced_apps += 1;
                continue;
            };
            let mut dec = Decoder::new(&app_ck.policy_blob);
            m.policy.restore(&mut dec)?;
            if !dec.is_empty() {
                return Err(Error::CorruptCheckpoint(format!(
                    "{} trailing bytes in policy blob for {id}",
                    dec.remaining()
                )));
            }
            m.tracker = app_ck.tracker.clone();
            m.last_window = app_ck.last_window.clone();
            m.pending_dt = app_ck.pending_dt;
            m.failure_streak = app_ck.failure_streak;
            m.backoff_until = app_ck.backoff_until;
            m.last_decision = app_ck.last_decision;
            m.last_resize_failures = app_ck.last_resize_failures;
        }
        Ok((mgr, ck.scheduler_backoff.clone()))
    }

    /// What the live cluster currently says about each app: replicas that
    /// hold resources and their mean granted request.
    fn observe_apps(sim: &Simulation) -> HashMap<AppId, ObservedAppState> {
        let mut acc: HashMap<AppId, (u32, ResourceVec)> = HashMap::new();
        for pod in sim.cluster().pods() {
            if pod.phase.holds_resources() {
                let e = acc.entry(pod.app()).or_insert((0, ResourceVec::ZERO));
                e.0 += 1;
                e.1 += pod.spec.request;
            }
        }
        acc.into_iter()
            .map(|(id, (n, total))| {
                let per = if n > 0 { total * (1.0 / f64::from(n)) } else { ResourceVec::ZERO };
                (id, ObservedAppState { replicas: n, alloc_per_replica: per })
            })
            .collect()
    }

    /// Cold recovery with no usable checkpoint: boots a fresh manager and
    /// reconstructs each policy's working state **level-triggered** from
    /// the cluster itself — the replicas that currently hold resources and
    /// their granted requests become the hold-last-safe baseline, the
    /// degradation guard slew-limits re-engagement away from it, and the
    /// PID is seeded so its first output reproduces the current actuation
    /// (bumpless transfer) instead of jumping to an unwarmed setpoint.
    #[must_use]
    pub fn cold_reconstruct(kind: ManagerKind, sim: &Simulation) -> Self {
        let mut mgr = ResourceManager::new(kind, sim);
        let observed = Self::observe_apps(sim);
        for (id, m) in &mut mgr.apps {
            if let Some(obs) = observed.get(id) {
                m.policy.reconstruct(obs);
            }
        }
        mgr
    }

    /// The strawman recovery: a fresh manager whose policies actuate
    /// their spec defaults immediately, without observing the cluster —
    /// the restart behaviour of a controller with no recovery logic.
    #[must_use]
    pub fn naive_reset(kind: ManagerKind, sim: &Simulation) -> Self {
        let mut mgr = ResourceManager::new(kind, sim);
        for m in mgr.apps.values_mut() {
            m.policy.reset_to_spec();
        }
        mgr
    }

    /// Ages a restored manager across a recovery gap longer than one
    /// control tick (the checkpoint was stale): the dark seconds are
    /// folded into each app's `pending_dt` so the first post-restart
    /// window computes rates over the real elapsed time, and each policy
    /// re-engages slew-limited from the *current* cluster state rather
    /// than trusting measurements from before the gap.
    pub fn age_after_gap(&mut self, sim: &Simulation, gap_secs: f64) {
        if gap_secs <= 0.0 {
            return;
        }
        let observed = Self::observe_apps(sim);
        for (id, m) in &mut self.apps {
            m.pending_dt += gap_secs;
            if let Some(obs) = observed.get(id) {
                m.policy.reconstruct(obs);
            }
        }
    }

    /// The manager's label for reports.
    #[must_use]
    pub fn label(&self) -> String {
        self.kind.label()
    }

    /// Cumulative failed in-place resizes.
    #[must_use]
    pub fn resize_failures(&self) -> u64 {
        self.resize_failures
    }

    /// The PLO tracker of one application.
    #[must_use]
    pub fn tracker(&self, app: AppId) -> Option<&PloTracker> {
        self.apps.get(&app).map(|a| &a.tracker)
    }

    /// World class of one application.
    #[must_use]
    pub fn world(&self, app: AppId) -> Option<WorldClass> {
        self.apps.get(&app).map(|a| a.world)
    }

    /// Actuations skipped by the retry-with-backoff logic.
    #[must_use]
    pub fn suppressed_actuations(&self) -> u64 {
        self.suppressed_actuations
    }

    /// Control-tick lookups that referenced an app the manager does not
    /// track (skipped instead of panicking).
    #[must_use]
    pub fn desynced_apps(&self) -> u64 {
        self.desynced_apps
    }

    /// Actuations silently swallowed by an `ActuationDrop` fault.
    #[must_use]
    pub fn dropped_actuations(&self) -> u64 {
        self.dropped_actuations
    }

    /// Actuations deferred by an `ActuationDelay` fault.
    #[must_use]
    pub fn delayed_actuations(&self) -> u64 {
        self.delayed_actuations
    }

    /// Actuations applied to only part of the fleet by an
    /// `ActuationPartial` fault.
    #[must_use]
    pub fn partial_actuations(&self) -> u64 {
        self.partial_actuations
    }

    /// Delayed actuations still waiting for their release time.
    #[must_use]
    pub fn pending_actuation_count(&self) -> usize {
        self.pending_actuations.len()
    }

    /// Applies every delayed actuation whose release time has arrived.
    /// Late targets are actuated verbatim — the controller moved on
    /// ticks ago, which is precisely the staleness hazard the chaos
    /// oracle watches for. Failures feed the global resize-failure
    /// counter but not the per-app retry backoff: the app's policy
    /// never observed this actuation, so it must not be punished for it.
    fn flush_pending_actuations(&mut self, sim: &mut Simulation) {
        let now = sim.now();
        if self.pending_actuations.is_empty() {
            return;
        }
        let mut still_pending = Vec::with_capacity(self.pending_actuations.len());
        for (due, app, decision) in std::mem::take(&mut self.pending_actuations) {
            if due > now {
                still_pending.push((due, app, decision));
                continue;
            }
            let Some(world) = self.apps.get(&app).map(|m| m.world) else {
                self.desynced_apps += 1;
                continue;
            };
            let failures = match world {
                WorldClass::Microservice => sim
                    .set_service_target(app, decision.replicas, decision.per_replica)
                    .unwrap_or(0),
                WorldClass::BigData => sim.set_batch_target(app, decision.per_replica).unwrap_or(0),
                WorldClass::Hpc => sim.set_hpc_target(app, decision.per_replica).unwrap_or(0),
            };
            self.resize_failures += u64::from(failures);
        }
        self.pending_actuations = still_pending;
    }

    /// Control ticks executed so far.
    #[must_use]
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Runs one control tick: harvest every app's window, account PLO
    /// compliance, run the policy, actuate. Returns the harvested windows
    /// for telemetry.
    pub fn tick(
        &mut self,
        sim: &mut Simulation,
        dt_secs: f64,
    ) -> Vec<(AppId, evolve_sim::AppWindow)> {
        self.tick_with_faults(sim, dt_secs, None)
    }

    /// Like [`ResourceManager::tick`], but consulting a fault injector:
    /// apps under a scrape blackout are *not* harvested (the engine keeps
    /// accumulating; the post-blackout window covers the gap) — their
    /// policies run on the replayed last window marked [`SignalQuality::
    /// Stale`] (or a synthetic empty one marked `Missing`), and no PLO
    /// window is recorded. Fresh windows pass through the injector's
    /// noise distortion. Returns the fresh windows only.
    pub fn tick_with_faults(
        &mut self,
        sim: &mut Simulation,
        dt_secs: f64,
        injector: Option<&mut FaultInjector>,
    ) -> Vec<(AppId, evolve_sim::AppWindow)> {
        self.tick_traced(sim, dt_secs, injector, None)
    }

    /// Like [`ResourceManager::tick_with_faults`], but additionally
    /// pushing one [`ControlTrace`] per managed application into `trace`:
    /// the signal quality, the measurement the policy saw, the actuation
    /// outcome (applied / suppressed / held / no-decision) and — for
    /// policies that implement [`AutoscalePolicy::explain`] — the full
    /// controller internals (PID terms, adaptive gains, predictor
    /// forecast, degradation-guard state).
    pub fn tick_traced(
        &mut self,
        sim: &mut Simulation,
        dt_secs: f64,
        mut injector: Option<&mut FaultInjector>,
        mut trace: Option<&mut TraceRing>,
    ) -> Vec<(AppId, evolve_sim::AppWindow)> {
        if self.arbiter.is_some() {
            return self.tick_arbitrated(sim, dt_secs, injector, trace);
        }
        self.ticks += 1;
        self.flush_pending_actuations(sim);
        let statuses: Vec<evolve_sim::AppStatus> = sim.apps().to_vec();
        let mut windows = Vec::with_capacity(statuses.len());
        for status in statuses {
            let now = sim.now();
            let blocked = injector.as_ref().is_some_and(|i| !i.scrape_available(status.id, now));
            let managed = match Self::managed_mut(&mut self.apps, status.id) {
                Ok(m) => m,
                // The simulation advertises an app the manager never
                // registered (control-plane desync). Skip it this tick
                // rather than crashing the whole controller.
                Err(_) => {
                    self.desynced_apps += 1;
                    continue;
                }
            };
            let (window, signal, effective_dt) = if blocked {
                managed.pending_dt += dt_secs;
                match managed.last_window.clone() {
                    Some(w) => (w, SignalQuality::Stale, dt_secs),
                    None => (empty_window(now), SignalQuality::Missing, dt_secs),
                }
            } else {
                let Ok(mut w) = sim.take_window(status.id) else {
                    // The manager tracks an app the simulation no longer
                    // serves windows for — same desync class as an unknown
                    // id: skip and count, never panic.
                    self.desynced_apps += 1;
                    continue;
                };
                if let Some(i) = injector.as_deref_mut() {
                    i.distort_window(status.id, &mut w);
                }
                let effective_dt = dt_secs + managed.pending_dt;
                managed.pending_dt = 0.0;
                // PLO accounting: only fresh windows that produced a
                // signal — blacked-out windows are simply missing.
                if let Some(measured) = w.measured_for(&status.plo) {
                    // Deadline PLOs: stop counting after the job finished.
                    let skip = matches!(status.plo, PloSpec::Deadline { .. })
                        && w.progress == Some(1.0)
                        && {
                            // Finished: one final window was counted.
                            managed.tracker.windows() > 0 && w.completions == 0 && w.arrivals == 0
                        };
                    if !skip {
                        managed.tracker.record_window(w.at, measured);
                    }
                }
                managed.last_window = Some(w.clone());
                (w, SignalQuality::Fresh, effective_dt)
            };
            let input = PolicyInput {
                app: &status,
                window: &window,
                dt_secs: effective_dt,
                resize_failures: managed.last_resize_failures,
                signal,
            };
            let decision = managed.policy.decide(&input);
            let mut outcome = ActuationOutcome::NoDecision;
            if let Some(decision) = decision {
                // Retry with backoff: re-issuing a target that just
                // failed (and has not materially changed) only hammers a
                // full node. Suppress it for exponentially growing tick
                // counts; any changed target acts immediately.
                let repeat_of_failed = managed.failure_streak > 0
                    && managed.last_decision.is_some_and(|d| decisions_close(&d, &decision));
                if repeat_of_failed && self.ticks < managed.backoff_until {
                    self.suppressed_actuations += 1;
                    outcome = ActuationOutcome::Suppressed;
                } else if injector.as_ref().is_some_and(|i| i.actuation_dropped(now)) {
                    // The resize request vanished between controller and
                    // cluster. The controller has no error to observe, so
                    // it records the decision as landed: no failure
                    // streak, no backoff — it will only notice via the
                    // next window's replica counts.
                    self.dropped_actuations += 1;
                    managed.failure_streak = 0;
                    managed.last_resize_failures = 0;
                    managed.last_decision = Some(decision);
                    outcome = ActuationOutcome::Dropped;
                } else if let Some(lag) = injector.as_ref().and_then(|i| i.actuation_lag(now)) {
                    // Queued behind a slow API path: the target lands at
                    // `now + lag` verbatim, however stale it is by then.
                    self.delayed_actuations += 1;
                    managed.failure_streak = 0;
                    managed.last_resize_failures = 0;
                    managed.last_decision = Some(decision);
                    self.pending_actuations.push((now + lag, status.id, decision));
                    outcome = ActuationOutcome::Delayed;
                } else {
                    let fraction =
                        injector.as_ref().and_then(|i| i.actuation_fraction(now)).unwrap_or(1.0);
                    if fraction < 1.0 {
                        self.partial_actuations += 1;
                    }
                    let failures = match managed.world {
                        WorldClass::Microservice => sim
                            .set_service_target_partial(
                                status.id,
                                decision.replicas,
                                decision.per_replica,
                                fraction,
                            )
                            .unwrap_or(0),
                        WorldClass::BigData => sim
                            .set_batch_target_partial(status.id, decision.per_replica, fraction)
                            .unwrap_or(0),
                        WorldClass::Hpc => sim
                            .set_hpc_target_partial(status.id, decision.per_replica, fraction)
                            .unwrap_or(0),
                    };
                    self.resize_failures += u64::from(failures);
                    let managed = match Self::managed_mut(&mut self.apps, status.id) {
                        Ok(m) => m,
                        Err(_) => {
                            self.desynced_apps += 1;
                            continue;
                        }
                    };
                    if failures > 0 {
                        managed.failure_streak += 1;
                        managed.backoff_until =
                            self.ticks + (1u64 << managed.failure_streak.min(3));
                    } else {
                        managed.failure_streak = 0;
                    }
                    managed.last_resize_failures = failures;
                    managed.last_decision = Some(decision);
                    // A degraded-signal actuation is a hold-last-safe,
                    // not a control decision on fresh data.
                    outcome = if signal.is_degraded() {
                        ActuationOutcome::Held
                    } else {
                        ActuationOutcome::Applied
                    };
                }
            }
            if let Some(ring) = trace.as_deref_mut() {
                if let Ok(m) = Self::managed_mut(&mut self.apps, status.id) {
                    let rate_rps = if effective_dt > 0.0 {
                        window.arrivals as f64 / effective_dt
                    } else {
                        f64::NAN
                    };
                    ring.push(TraceEvent::Control(ControlTrace {
                        tick: self.ticks,
                        at: now,
                        app: status.id,
                        signal: signal.as_trace(),
                        measured: window.measured_for(&status.plo),
                        rate_rps,
                        replicas: window.running_replicas,
                        per_replica: window.alloc_per_replica,
                        outcome,
                        resize_failures: m.last_resize_failures,
                        explain: m.policy.explain().map(Box::new),
                    }));
                }
            }
            if signal == SignalQuality::Fresh {
                windows.push((status.id, window));
            }
        }
        windows
    }

    /// Runs the actuation chain (retry backoff, injected drop/delay/partial
    /// faults, the in-place resize itself, failure-streak bookkeeping) for
    /// one decided target. Used by the arbitrated tick path; the unarbitrated
    /// path keeps its original inline chain so its operation order — and with
    /// it the golden trace fixture — is untouched. Returns `None` when the
    /// app desynced mid-actuation (the caller skips its trace and window).
    fn actuate_target(
        &mut self,
        sim: &mut Simulation,
        injector: &mut Option<&mut FaultInjector>,
        now: SimTime,
        app: AppId,
        decision: PolicyDecision,
        signal: SignalQuality,
    ) -> Option<ActuationOutcome> {
        let managed = match Self::managed_mut(&mut self.apps, app) {
            Ok(m) => m,
            Err(_) => {
                self.desynced_apps += 1;
                return None;
            }
        };
        let repeat_of_failed = managed.failure_streak > 0
            && managed.last_decision.is_some_and(|d| decisions_close(&d, &decision));
        if repeat_of_failed && self.ticks < managed.backoff_until {
            self.suppressed_actuations += 1;
            return Some(ActuationOutcome::Suppressed);
        }
        if injector.as_ref().is_some_and(|i| i.actuation_dropped(now)) {
            self.dropped_actuations += 1;
            managed.failure_streak = 0;
            managed.last_resize_failures = 0;
            managed.last_decision = Some(decision);
            return Some(ActuationOutcome::Dropped);
        }
        if let Some(lag) = injector.as_ref().and_then(|i| i.actuation_lag(now)) {
            self.delayed_actuations += 1;
            managed.failure_streak = 0;
            managed.last_resize_failures = 0;
            managed.last_decision = Some(decision);
            self.pending_actuations.push((now + lag, app, decision));
            return Some(ActuationOutcome::Delayed);
        }
        let fraction = injector.as_ref().and_then(|i| i.actuation_fraction(now)).unwrap_or(1.0);
        if fraction < 1.0 {
            self.partial_actuations += 1;
        }
        let failures = match managed.world {
            WorldClass::Microservice => sim
                .set_service_target_partial(app, decision.replicas, decision.per_replica, fraction)
                .unwrap_or(0),
            WorldClass::BigData => {
                sim.set_batch_target_partial(app, decision.per_replica, fraction).unwrap_or(0)
            }
            WorldClass::Hpc => {
                sim.set_hpc_target_partial(app, decision.per_replica, fraction).unwrap_or(0)
            }
        };
        self.resize_failures += u64::from(failures);
        if failures > 0 {
            managed.failure_streak += 1;
            managed.backoff_until = self.ticks + (1u64 << managed.failure_streak.min(3));
        } else {
            managed.failure_streak = 0;
        }
        managed.last_resize_failures = failures;
        managed.last_decision = Some(decision);
        Some(if signal.is_degraded() { ActuationOutcome::Held } else { ActuationOutcome::Applied })
    }

    /// The arbitrated control tick: every per-app policy step runs first
    /// (scrape, PLO accounting, PID decision), then the summed demand is
    /// arbitrated against ready cluster capacity, and only the granted
    /// targets actuate. Shed apps actuate nothing and have their admission
    /// control flipped to load shedding; clipped apps actuate the scaled
    /// grant and also shed the load their reduced allocation cannot carry.
    fn tick_arbitrated(
        &mut self,
        sim: &mut Simulation,
        dt_secs: f64,
        mut injector: Option<&mut FaultInjector>,
        mut trace: Option<&mut TraceRing>,
    ) -> Vec<(AppId, evolve_sim::AppWindow)> {
        struct Planned {
            status: evolve_sim::AppStatus,
            window: AppWindow,
            signal: SignalQuality,
            effective_dt: f64,
            now: SimTime,
            decision: Option<PolicyDecision>,
        }
        self.ticks += 1;
        self.flush_pending_actuations(sim);
        let statuses: Vec<evolve_sim::AppStatus> = sim.apps().to_vec();
        let mut planned: Vec<Planned> = Vec::with_capacity(statuses.len());
        // Phase 1: scrape and decide for every app — all PID steps run
        // before any capacity question is asked.
        for status in statuses {
            let now = sim.now();
            let blocked = injector.as_ref().is_some_and(|i| !i.scrape_available(status.id, now));
            let managed = match Self::managed_mut(&mut self.apps, status.id) {
                Ok(m) => m,
                Err(_) => {
                    self.desynced_apps += 1;
                    continue;
                }
            };
            let (window, signal, effective_dt) = if blocked {
                managed.pending_dt += dt_secs;
                match managed.last_window.clone() {
                    Some(w) => (w, SignalQuality::Stale, dt_secs),
                    None => (empty_window(now), SignalQuality::Missing, dt_secs),
                }
            } else {
                let Ok(mut w) = sim.take_window(status.id) else {
                    self.desynced_apps += 1;
                    continue;
                };
                if let Some(i) = injector.as_deref_mut() {
                    i.distort_window(status.id, &mut w);
                }
                let effective_dt = dt_secs + managed.pending_dt;
                managed.pending_dt = 0.0;
                if let Some(measured) = w.measured_for(&status.plo) {
                    let skip = matches!(status.plo, PloSpec::Deadline { .. })
                        && w.progress == Some(1.0)
                        && {
                            managed.tracker.windows() > 0 && w.completions == 0 && w.arrivals == 0
                        };
                    if !skip {
                        let violated = managed.tracker.record_window(w.at, measured);
                        if violated && w.shed_requests > 0 {
                            self.violations_while_shedding += 1;
                        }
                    }
                }
                managed.last_window = Some(w.clone());
                (w, SignalQuality::Fresh, effective_dt)
            };
            let input = PolicyInput {
                app: &status,
                window: &window,
                dt_secs: effective_dt,
                resize_failures: managed.last_resize_failures,
                signal,
            };
            let decision = managed.policy.decide(&input);
            planned.push(Planned { status, window, signal, effective_dt, now, decision });
        }
        // Phase 2: one cluster-wide arbitration over the decided targets.
        // Apps without a decision this tick keep whatever they hold, so
        // their current allocation is subtracted from the pool as held.
        // Each decided app's demand is its desired total clamped by the
        // growth governor — `demand_cap_ratio ×` what it actually holds,
        // with one replica's request as the cold-start base — so settling
        // PID overshoot does not read as a capacity crunch.
        let cap_ratio = self.arbiter.as_ref().map_or(1.0, |a| a.config().demand_cap_ratio).max(1.0);
        let mut requests: Vec<ArbiterRequest> = Vec::new();
        let mut held = ResourceVec::ZERO;
        for p in &planned {
            match &p.decision {
                Some(d) => {
                    let desired = d.per_replica * f64::from(d.replicas);
                    // Cold start (nothing bound yet) has no allocation to
                    // anchor the governor on; the desire passes through.
                    let requested = if p.window.alloc == ResourceVec::ZERO {
                        desired
                    } else {
                        let cap = (p.window.alloc * cap_ratio).max(&d.per_replica);
                        desired.min(&cap)
                    };
                    requests.push(ArbiterRequest {
                        app: p.status.id,
                        class: p.status.priority,
                        requested,
                    });
                }
                None => held += p.window.alloc,
            }
        }
        let ready = sim.cluster().total_allocatable();
        let arbiter = self.arbiter.as_mut().expect("tick_arbitrated requires an arbiter");
        let outcomes = arbiter.arbitrate(&requests, ready, held);
        let in_crunch = arbiter.state().in_crunch();
        self.starvation_watermark =
            self.starvation_watermark.max(arbiter.state().max_starvation_age());
        let by_app: HashMap<AppId, ArbitrationOutcome> =
            outcomes.iter().map(|o| (o.app, *o)).collect();
        self.last_arbitration = outcomes;
        // Phase 3: actuate under the grants, trace, and emit fresh windows.
        let mut windows = Vec::with_capacity(planned.len());
        for p in planned {
            let mut outcome = ActuationOutcome::NoDecision;
            let mut arb_for_trace: Option<ArbitrationOutcome> = None;
            if let Some(decision) = p.decision {
                let arb = by_app.get(&p.status.id).copied();
                arb_for_trace = arb;
                match arb.map(|o| o.decision) {
                    Some(GrantDecision::Shed) => {
                        // The app rejects offered load at admission and its
                        // allocation is squeezed to a keep-alive footprint —
                        // a shed grant of zero must actually free capacity,
                        // or the granted classes fight the shed class's
                        // stale pods for the same nodes.
                        self.shed_decisions += 1;
                        self.shed_app_ids.insert(p.status.id);
                        let _ = sim.set_service_shedding(p.status.id, true);
                        let squeezed = PolicyDecision {
                            per_replica: decision.per_replica * SHED_KEEPALIVE_FRACTION,
                            replicas: decision.replicas,
                        };
                        if self
                            .actuate_target(
                                sim,
                                &mut injector,
                                p.now,
                                p.status.id,
                                squeezed,
                                p.signal,
                            )
                            .is_none()
                        {
                            continue;
                        }
                        outcome = ActuationOutcome::Shed;
                    }
                    Some(GrantDecision::Clipped(_)) => {
                        let o = arb.expect("clipped grant has an outcome");
                        self.clipped_allocations += 1;
                        let _ = sim.set_service_shedding(p.status.id, true);
                        // The grant is per-dimension: actuate it directly
                        // (divided across replicas) rather than scaling the
                        // whole desired vector by the scalar fraction.
                        let clipped = PolicyDecision {
                            per_replica: o.granted * (1.0 / f64::from(decision.replicas.max(1))),
                            replicas: decision.replicas,
                        };
                        match self.actuate_target(
                            sim,
                            &mut injector,
                            p.now,
                            p.status.id,
                            clipped,
                            p.signal,
                        ) {
                            Some(out) => outcome = out,
                            None => continue,
                        }
                    }
                    _ => {
                        // Full grant (or, defensively, a missing outcome):
                        // actuate the policy's own target unmodified.
                        let _ = sim.set_service_shedding(p.status.id, false);
                        match self.actuate_target(
                            sim,
                            &mut injector,
                            p.now,
                            p.status.id,
                            decision,
                            p.signal,
                        ) {
                            Some(out) => outcome = out,
                            None => continue,
                        }
                    }
                }
            }
            if let Some(ring) = trace.as_deref_mut() {
                if let Ok(m) = Self::managed_mut(&mut self.apps, p.status.id) {
                    let rate_rps = if p.effective_dt > 0.0 {
                        p.window.arrivals as f64 / p.effective_dt
                    } else {
                        f64::NAN
                    };
                    ring.push(TraceEvent::Control(ControlTrace {
                        tick: self.ticks,
                        at: p.now,
                        app: p.status.id,
                        signal: p.signal.as_trace(),
                        measured: p.window.measured_for(&p.status.plo),
                        rate_rps,
                        replicas: p.window.running_replicas,
                        per_replica: p.window.alloc_per_replica,
                        outcome,
                        resize_failures: m.last_resize_failures,
                        explain: m.policy.explain().map(Box::new),
                    }));
                    if let Some(o) = arb_for_trace {
                        ring.push(TraceEvent::Arbitration(ArbitrationTrace {
                            tick: self.ticks,
                            at: p.now,
                            app: o.app,
                            class: o.class.as_str(),
                            requested: o.requested,
                            granted: o.granted,
                            decision: o.decision.as_str(),
                            grant_fraction: o.grant_fraction,
                            starvation_age: o.starvation_age,
                            in_crunch,
                        }));
                    }
                }
            }
            if p.signal == SignalQuality::Fresh {
                windows.push((p.status.id, p.window));
            }
        }
        windows
    }
}

/// The synthetic stand-in handed to policies when a blackout hides an app
/// that was never successfully scraped.
fn empty_window(at: SimTime) -> AppWindow {
    AppWindow {
        at,
        duration: SimDuration::ZERO,
        arrivals: 0,
        completions: 0,
        timeouts: 0,
        shed_requests: 0,
        oom_kills: 0,
        p99_ms: None,
        mean_ms: None,
        throughput_rps: 0.0,
        usage: ResourceVec::ZERO,
        alloc: ResourceVec::ZERO,
        alloc_per_replica: ResourceVec::ZERO,
        running_replicas: 0,
        pending_replicas: 0,
        progress: None,
        projected_makespan_s: None,
    }
}

/// `true` when two decisions are materially the same actuation (equal
/// replicas, per-replica components within 5%).
fn decisions_close(a: &PolicyDecision, b: &PolicyDecision) -> bool {
    if a.replicas != b.replicas {
        return false;
    }
    Resource::ALL.iter().all(|&r| {
        let (x, y) = (a.per_replica[r], b.per_replica[r]);
        (x - y).abs() <= 0.05 * x.abs().max(y.abs()).max(1e-9)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use evolve_sim::{ClusterConfig, NodeShape, SimulationConfig};
    use evolve_types::{SimDuration, SimTime};
    use evolve_workload::{LoadSpec, RequestClass, ServiceSpec, WorkloadMix};

    fn sim() -> Simulation {
        let class = RequestClass::new(
            "rq",
            ResourceVec::new(20.0, 2.0, 0.1, 0.1),
            0.0,
            SimDuration::from_secs(10),
        );
        let mix = WorkloadMix::new().with_service(
            ServiceSpec::new(
                "svc",
                PloSpec::LatencyP99 { target_ms: 100.0 },
                class,
                ResourceVec::new(2_000.0, 2_048.0, 50.0, 50.0),
            )
            .with_initial_replicas(2),
            LoadSpec::Constant { rate: 50.0 },
        );
        Simulation::new(
            SimulationConfig::default(),
            ClusterConfig::uniform(2, NodeShape::default()),
            &mix,
            1,
        )
    }

    #[test]
    fn manager_registers_all_apps() {
        let s = sim();
        let m = ResourceManager::new(ManagerKind::Evolve, &s);
        assert!(m.tracker(s.apps()[0].id).is_some());
        assert_eq!(m.world(s.apps()[0].id), Some(WorldClass::Microservice));
        assert_eq!(m.label(), "evolve");
    }

    #[test]
    fn tick_records_plo_windows() {
        let mut s = sim();
        // Bind replicas first-fit.
        let pending: Vec<_> = s.cluster().pending_pods().map(|p| p.id).collect();
        for pod in pending {
            let node = s.cluster().nodes()[0].id();
            s.bind_pod(pod, node).unwrap();
        }
        let mut m = ResourceManager::new(ManagerKind::Evolve, &s);
        s.run_until(SimTime::from_secs(10));
        let windows = m.tick(&mut s, 10.0);
        assert_eq!(windows.len(), 1);
        let app = s.apps()[0].id;
        assert_eq!(m.tracker(app).unwrap().windows(), 1);
    }

    #[test]
    fn kind_labels() {
        assert_eq!(ManagerKind::Evolve.label(), "evolve");
        assert_eq!(ManagerKind::KubeStatic.label(), "kube-static");
        assert_eq!(ManagerKind::Hpa { target_utilization: 0.6 }.label(), "hpa");
        assert_eq!(ManagerKind::Vpa { margin: 0.3 }.label(), "vpa");
        assert_eq!(
            ManagerKind::EvolveWith(EvolvePolicyConfig::default().cpu_only()).label(),
            "evolve-cpu-only"
        );
    }
}
