//! The autoscaling-policy abstraction shared by EVOLVE and the baselines.

use evolve_sim::{AppStatus, AppWindow};
use evolve_telemetry::trace::{ControlExplain, TraceSignal};
use evolve_types::codec::{Codec, Decoder, Encoder};
use evolve_types::{ResourceVec, Result};
use evolve_workload::PloSpec;

/// How trustworthy this tick's window is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SignalQuality {
    /// A fresh scrape landed this tick.
    #[default]
    Fresh,
    /// The scrape failed; `window` replays the last successful one.
    Stale,
    /// The scrape failed and no prior window exists; `window` is a
    /// synthetic placeholder.
    Missing,
}

impl SignalQuality {
    /// `true` when the window is not a fresh measurement — the policy
    /// must not mistake silence for idleness.
    #[must_use]
    pub fn is_degraded(self) -> bool {
        self != SignalQuality::Fresh
    }

    /// The decision-trace equivalent (telemetry cannot depend on this
    /// crate, so the trace layer carries its own mirror enum).
    #[must_use]
    pub fn as_trace(self) -> TraceSignal {
        match self {
            SignalQuality::Fresh => TraceSignal::Fresh,
            SignalQuality::Stale => TraceSignal::Stale,
            SignalQuality::Missing => TraceSignal::Missing,
        }
    }
}

/// Everything a policy sees at one control tick.
#[derive(Debug, Clone, Copy)]
pub struct PolicyInput<'a> {
    /// The application's identity and PLO.
    pub app: &'a AppStatus,
    /// The harvested control window.
    pub window: &'a AppWindow,
    /// Elapsed control interval in seconds.
    pub dt_secs: f64,
    /// In-place resizes that failed for node headroom on the previous
    /// tick — a signal that vertical growth is blocked and the policy
    /// should scale out instead.
    pub resize_failures: u32,
    /// Whether `window` is a fresh scrape or a degraded stand-in.
    pub signal: SignalQuality,
}

/// A policy's actuation for one application.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PolicyDecision {
    /// Target per-replica (or per-task / per-rank) allocation.
    pub per_replica: ResourceVec,
    /// Target replica count (ignored for batch/HPC apps, whose
    /// parallelism is fixed by the job spec).
    pub replicas: u32,
}

impl Codec for PolicyDecision {
    fn encode(&self, enc: &mut Encoder) {
        self.per_replica.encode(enc);
        self.replicas.encode(enc);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        Ok(PolicyDecision { per_replica: ResourceVec::decode(dec)?, replicas: u32::decode(dec)? })
    }
}

/// What a restarted controller can observe about an application from the
/// live cluster alone: how many replicas actually hold resources right
/// now and what each one was granted. This is the level-triggered
/// baseline a policy reconstructs from when no checkpoint survived the
/// crash.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObservedAppState {
    /// Replicas currently holding resources (running or starting).
    pub replicas: u32,
    /// Mean granted request per such replica.
    pub alloc_per_replica: ResourceVec,
}

/// One autoscaling policy instance, stateful per application.
pub trait AutoscalePolicy: Send {
    /// Policy name for reports.
    fn name(&self) -> &'static str;

    /// Computes the actuation for this tick; `None` leaves the
    /// application untouched.
    fn decide(&mut self, input: &PolicyInput<'_>) -> Option<PolicyDecision>;

    /// Serializes the policy's mutable state into `enc`. Stateless
    /// policies write nothing — the default is a no-op. Implementations
    /// should lead with a one-byte magic tag so [`restore`] can reject a
    /// blob produced by a different policy.
    ///
    /// [`restore`]: AutoscalePolicy::restore
    fn checkpoint(&self, enc: &mut Encoder) {
        let _ = enc;
    }

    /// Restores the state written by [`checkpoint`]. The default accepts
    /// the empty blob stateless policies produce.
    ///
    /// # Errors
    ///
    /// Returns [`evolve_types::Error::CorruptCheckpoint`] when the blob is
    /// truncated, carries another policy's magic tag, or is otherwise
    /// malformed.
    ///
    /// [`checkpoint`]: AutoscalePolicy::checkpoint
    fn restore(&mut self, dec: &mut Decoder<'_>) -> Result<()> {
        let _ = dec;
        Ok(())
    }

    /// Rebuilds working state from the observed cluster after a crash
    /// with no usable checkpoint (cold reconstruction). Implementations
    /// should adopt `observed` as their hold-last-safe baseline so the
    /// first post-restart decision does not jerk the allocation. The
    /// default is a no-op (stateless policies need no reconstruction).
    fn reconstruct(&mut self, observed: &ObservedAppState) {
        let _ = observed;
    }

    /// Discards all learned state and returns to the constructor
    /// defaults, ignoring both checkpoint and cluster (the naive-reset
    /// recovery baseline). The default is a no-op.
    fn reset_to_spec(&mut self) {}

    /// The controller internals behind the most recent
    /// [`decide`](AutoscalePolicy::decide) call, for the decision trace.
    /// The default — for policies with no explainable internals, like the
    /// static baseline — is `None`.
    fn explain(&self) -> Option<ControlExplain> {
        None
    }
}

/// The signed relative PLO error, oriented so **positive means
/// under-provisioned** (scale up): latency above target or throughput
/// below target.
///
/// Returns 1.0 (full violation) for non-finite measurements — the service
/// produced no valid signal, e.g. every request timed out.
///
/// # Examples
///
/// ```
/// use evolve_core::control_error;
/// use evolve_workload::PloSpec;
///
/// let plo = PloSpec::LatencyP99 { target_ms: 100.0 };
/// assert!(control_error(&plo, 150.0) > 0.0);
/// assert!(control_error(&plo, 50.0) < 0.0);
/// let thr = PloSpec::Throughput { target_rps: 100.0 };
/// assert!(control_error(&thr, 50.0) > 0.0);
/// ```
#[must_use]
pub fn control_error(plo: &PloSpec, measured: f64) -> f64 {
    control_error_with_margin(plo, measured, 0.0)
}

/// Like [`control_error`], but against a setpoint pulled `margin` inside
/// the objective (e.g. `margin = 0.25` controls a 100 ms latency PLO to a
/// 75 ms setpoint, and a 100 rps throughput PLO to 125 rps). Controlling
/// *to* the PLO would park the loop right on the compliance boundary,
/// where measurement noise turns half the windows into violations.
///
/// # Panics
///
/// Panics when `margin` is not in `[0, 1)`.
#[must_use]
pub fn control_error_with_margin(plo: &PloSpec, measured: f64, margin: f64) -> f64 {
    assert!((0.0..1.0).contains(&margin), "margin must be in [0, 1)");
    if !measured.is_finite() {
        return 1.0;
    }
    let target = plo.target();
    if target <= 0.0 {
        return 0.0;
    }
    if plo.upper_bound() {
        let setpoint = target * (1.0 - margin);
        (measured - setpoint) / setpoint
    } else {
        let setpoint = target * (1.0 + margin);
        (setpoint - measured) / setpoint
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evolve_types::SimDuration;

    #[test]
    fn error_orientation_latency() {
        let plo = PloSpec::LatencyP99 { target_ms: 100.0 };
        assert_eq!(control_error(&plo, 100.0), 0.0);
        assert_eq!(control_error(&plo, 200.0), 1.0);
        assert_eq!(control_error(&plo, 50.0), -0.5);
    }

    #[test]
    fn error_orientation_throughput() {
        let plo = PloSpec::Throughput { target_rps: 1000.0 };
        assert_eq!(control_error(&plo, 500.0), 0.5);
        assert_eq!(control_error(&plo, 2000.0), -1.0);
    }

    #[test]
    fn error_orientation_deadline() {
        let plo = PloSpec::Deadline { deadline: SimDuration::from_secs(100) };
        // Projected makespan 150 s vs 100 s deadline → 50% over.
        assert_eq!(control_error(&plo, 150.0), 0.5);
    }

    #[test]
    fn margin_shifts_the_setpoint() {
        let plo = PloSpec::LatencyP99 { target_ms: 100.0 };
        // At 80 ms with a 25% margin (setpoint 75 ms) we are *over*.
        assert!(control_error_with_margin(&plo, 80.0, 0.25) > 0.0);
        assert!(control_error_with_margin(&plo, 70.0, 0.25) < 0.0);
        let thr = PloSpec::Throughput { target_rps: 100.0 };
        // At 110 rps with a 25% margin (setpoint 125) we are under.
        assert!(control_error_with_margin(&thr, 110.0, 0.25) > 0.0);
        assert!(control_error_with_margin(&thr, 130.0, 0.25) < 0.0);
    }

    #[test]
    #[should_panic(expected = "margin must be in")]
    fn margin_must_be_sub_unit() {
        let plo = PloSpec::LatencyP99 { target_ms: 100.0 };
        let _ = control_error_with_margin(&plo, 50.0, 1.0);
    }

    #[test]
    fn non_finite_is_full_violation() {
        let plo = PloSpec::LatencyP99 { target_ms: 100.0 };
        assert_eq!(control_error(&plo, f64::INFINITY), 1.0);
        assert_eq!(control_error(&plo, f64::NAN), 1.0);
    }
}
