//! EVOLVE's resource manager: the paper's contribution, end to end.
//!
//! Users declare **performance-level objectives** (PLOs) instead of raw
//! resource requests; the manager closes the loop: it scrapes each
//! application's control window from the simulated cluster, computes the
//! PLO error, runs the **multi-resource adaptive PID controller** (from
//! `evolve-control`), and actuates vertical resizes, horizontal replica
//! changes and job-allocation updates through the cluster API. A
//! pluggable scheduler (from `evolve-scheduler`) binds the resulting
//! pods, with priority preemption and gang support.
//!
//! The crate also contains the **baselines** every experiment compares
//! against (stock-Kubernetes static requests, threshold HPA, a VPA-like
//! percentile vertical scaler), the [`ExperimentRunner`] that wires
//! workload → cluster → manager → scheduler and collects the summary
//! statistics, and the report helpers that render the tables and CSV
//! series in EXPERIMENTS.md.
//!
//! # Examples
//!
//! ```no_run
//! use evolve_core::{ExperimentRunner, ManagerKind, RunConfig};
//! use evolve_workload::Scenario;
//!
//! let cfg = RunConfig::builder(Scenario::single_diurnal(), ManagerKind::Evolve)
//!     .nodes(4)
//!     .seed(7)
//!     .build();
//! let outcome = ExperimentRunner::new(cfg).run();
//! println!("violation rate {:.3}", outcome.total_violation_rate());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod baselines;
mod checkpoint;
mod evolve_policy;
mod harness;
mod manager;
mod policy;
mod report;
mod runner;

pub use baselines::{HpaPolicy, StaticPolicy, VpaPolicy};
pub use checkpoint::ControllerCheckpoint;
pub use evolve_policy::{EvolvePolicy, EvolvePolicyConfig};
pub use harness::{Harness, ReplicatedOutcome};
pub use manager::{ManagerKind, ResourceManager};
pub use policy::{
    control_error, control_error_with_margin, AutoscalePolicy, ObservedAppState, PolicyDecision,
    PolicyInput, SignalQuality,
};
pub use report::{write_csv, Summary, Table};
pub use runner::{
    arbiter_from_spec, faults_from_spec, AppSummary, ExperimentRunner, RecoveryStrategy, RunConfig,
    RunConfigBuilder, RunOutcome, RunPerf, SchedulerProfile,
};
