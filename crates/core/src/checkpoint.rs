//! Controller checkpoints: the durable image of the control plane.
//!
//! EVOLVE's controller is stateful — PID integrals, derivative filters,
//! RLS model weights, PLO violation ledgers, retry backoffs. A controller
//! process crash destroys all of it, and a restarted controller that
//! starts from scratch re-learns on live traffic (naive reset, the worst
//! recovery). [`ControllerCheckpoint`] captures the complete mutable
//! state of the [`ResourceManager`](crate::ResourceManager) and the
//! scheduler's [`RequeueBackoff`] in one deterministic byte image so a
//! restart can resume mid-thought: same decisions, bit for bit, as if the
//! crash never happened.
//!
//! The image is encoded with the [`Codec`] fixed-layout binary format
//! (the vendored `serde` is an inert stub), led by a magic number and a
//! version byte so foreign or stale blobs are rejected with
//! [`Error::CorruptCheckpoint`] instead of being misinterpreted.

use evolve_control::CapacityArbiter;
use evolve_scheduler::RequeueBackoff;
use evolve_sim::AppWindow;
use evolve_telemetry::PloTracker;
use evolve_types::codec::{Codec, Decoder, Encoder};
use evolve_types::{AppId, Error, Result, SimTime};

use crate::policy::PolicyDecision;

/// Magic number leading every serialized checkpoint ("EVCK").
const CHECKPOINT_MAGIC: u32 = 0x4556_434b;
/// Format version; bump on any layout change.
///
/// Version history: 1 — initial layout; 2 — actuation-fault accounting
/// (drop/delay/partial counters and the delayed-actuation queue);
/// 3 — capacity-arbiter state (config + grant fractions + starvation
/// ages) and overload accounting (clip/shed counters, starvation
/// watermark, violations-while-shedding).
const CHECKPOINT_VERSION: u8 = 3;

/// Per-application slice of a checkpoint: the policy's opaque state blob
/// plus the manager-side bookkeeping around it.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct AppCheckpoint {
    /// Policy state as written by `AutoscalePolicy::checkpoint` (leads
    /// with the policy's own magic tag).
    pub(crate) policy_blob: Vec<u8>,
    /// The app's PLO violation ledger.
    pub(crate) tracker: PloTracker,
    /// Last successfully scraped window (blackout replay source).
    pub(crate) last_window: Option<AppWindow>,
    /// Control seconds accumulated while scrapes were dark.
    pub(crate) pending_dt: f64,
    /// Consecutive actuations that reported resize failures.
    pub(crate) failure_streak: u32,
    /// Tick index before which an unchanged failing target is suppressed.
    pub(crate) backoff_until: u64,
    /// The decision last actuated.
    pub(crate) last_decision: Option<PolicyDecision>,
    /// Failed in-place resizes on the previous tick.
    pub(crate) last_resize_failures: u32,
}

impl Codec for AppCheckpoint {
    fn encode(&self, enc: &mut Encoder) {
        self.policy_blob.encode(enc);
        self.tracker.encode(enc);
        self.last_window.encode(enc);
        self.pending_dt.encode(enc);
        self.failure_streak.encode(enc);
        self.backoff_until.encode(enc);
        self.last_decision.encode(enc);
        self.last_resize_failures.encode(enc);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        Ok(AppCheckpoint {
            policy_blob: Vec::<u8>::decode(dec)?,
            tracker: PloTracker::decode(dec)?,
            last_window: Option::<AppWindow>::decode(dec)?,
            pending_dt: f64::decode(dec)?,
            failure_streak: u32::decode(dec)?,
            backoff_until: u64::decode(dec)?,
            last_decision: Option::<PolicyDecision>::decode(dec)?,
            last_resize_failures: u32::decode(dec)?,
        })
    }
}

/// A complete, self-describing image of the control plane at one instant.
///
/// Built by [`ResourceManager::checkpoint`](crate::ResourceManager::checkpoint)
/// and consumed by
/// [`ResourceManager::restore`](crate::ResourceManager::restore); the
/// experiment runner captures one every `checkpoint_interval_ticks`
/// control ticks.
#[derive(Debug, Clone, PartialEq)]
pub struct ControllerCheckpoint {
    /// Simulation time at which the image was captured.
    pub at: SimTime,
    /// Control ticks executed so far.
    pub(crate) ticks: u64,
    /// Cumulative failed in-place resizes.
    pub(crate) resize_failures: u64,
    /// Actuations skipped by the retry-backoff.
    pub(crate) suppressed_actuations: u64,
    /// Actuations swallowed by an `ActuationDrop` fault.
    pub(crate) dropped_actuations: u64,
    /// Actuations deferred by an `ActuationDelay` fault.
    pub(crate) delayed_actuations: u64,
    /// Actuations applied to only part of the fleet.
    pub(crate) partial_actuations: u64,
    /// Delayed actuations still waiting for their release time.
    pub(crate) pending_actuations: Vec<(SimTime, AppId, PolicyDecision)>,
    /// Per-application state, sorted by [`AppId`] so the byte image of a
    /// given control state is unique (the live map is a `HashMap`).
    pub(crate) apps: Vec<(AppId, AppCheckpoint)>,
    /// The scheduler's requeue-backoff ledger.
    pub(crate) scheduler_backoff: RequeueBackoff,
    /// The capacity arbiter (config and persistent state), when installed.
    pub(crate) arbiter: Option<CapacityArbiter>,
    /// Actuations whose grant was clipped below the policy's request.
    pub(crate) clipped_allocations: u64,
    /// Arbitration rounds that shed an app outright.
    pub(crate) shed_decisions: u64,
    /// Distinct apps the arbiter has ever shed, sorted by id.
    pub(crate) shed_app_ids: Vec<AppId>,
    /// Highest starvation age any app reached under arbitration.
    pub(crate) starvation_watermark: u32,
    /// PLO violations recorded while the violating app was shedding load.
    pub(crate) violations_while_shedding: u64,
}

impl ControllerCheckpoint {
    /// Serializes the checkpoint to its canonical byte image.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        CHECKPOINT_MAGIC.encode(&mut enc);
        CHECKPOINT_VERSION.encode(&mut enc);
        self.at.encode(&mut enc);
        self.ticks.encode(&mut enc);
        self.resize_failures.encode(&mut enc);
        self.suppressed_actuations.encode(&mut enc);
        self.dropped_actuations.encode(&mut enc);
        self.delayed_actuations.encode(&mut enc);
        self.partial_actuations.encode(&mut enc);
        self.pending_actuations.encode(&mut enc);
        self.apps.encode(&mut enc);
        self.scheduler_backoff.encode(&mut enc);
        self.arbiter.encode(&mut enc);
        self.clipped_allocations.encode(&mut enc);
        self.shed_decisions.encode(&mut enc);
        self.shed_app_ids.encode(&mut enc);
        self.starvation_watermark.encode(&mut enc);
        self.violations_while_shedding.encode(&mut enc);
        enc.into_bytes()
    }

    /// Deserializes a checkpoint from bytes produced by
    /// [`ControllerCheckpoint::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::CorruptCheckpoint`] when the magic number or
    /// version does not match, the image is truncated, trailing bytes
    /// remain, or any field fails to decode.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let mut dec = Decoder::new(bytes);
        let magic = u32::decode(&mut dec)?;
        if magic != CHECKPOINT_MAGIC {
            return Err(Error::CorruptCheckpoint(format!(
                "bad magic {magic:#010x}, expected {CHECKPOINT_MAGIC:#010x}"
            )));
        }
        let version = u8::decode(&mut dec)?;
        if version != CHECKPOINT_VERSION {
            return Err(Error::CorruptCheckpoint(format!(
                "unsupported checkpoint version {version}"
            )));
        }
        let out = ControllerCheckpoint {
            at: SimTime::decode(&mut dec)?,
            ticks: u64::decode(&mut dec)?,
            resize_failures: u64::decode(&mut dec)?,
            suppressed_actuations: u64::decode(&mut dec)?,
            dropped_actuations: u64::decode(&mut dec)?,
            delayed_actuations: u64::decode(&mut dec)?,
            partial_actuations: u64::decode(&mut dec)?,
            pending_actuations: Vec::<(SimTime, AppId, PolicyDecision)>::decode(&mut dec)?,
            apps: Vec::<(AppId, AppCheckpoint)>::decode(&mut dec)?,
            scheduler_backoff: RequeueBackoff::decode(&mut dec)?,
            arbiter: Option::<CapacityArbiter>::decode(&mut dec)?,
            clipped_allocations: u64::decode(&mut dec)?,
            shed_decisions: u64::decode(&mut dec)?,
            shed_app_ids: Vec::<AppId>::decode(&mut dec)?,
            starvation_watermark: u32::decode(&mut dec)?,
            violations_while_shedding: u64::decode(&mut dec)?,
        };
        if !dec.is_empty() {
            return Err(Error::CorruptCheckpoint(format!(
                "{} trailing bytes after checkpoint",
                dec.remaining()
            )));
        }
        Ok(out)
    }

    /// Control ticks the captured manager had executed.
    #[must_use]
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Applications captured in the image.
    #[must_use]
    pub fn app_count(&self) -> usize {
        self.apps.len()
    }

    /// The captured scheduler requeue-backoff ledger.
    #[must_use]
    pub fn scheduler_backoff(&self) -> &RequeueBackoff {
        &self.scheduler_backoff
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_checkpoint_round_trips() {
        let ck = ControllerCheckpoint {
            at: SimTime::from_secs(42),
            ticks: 7,
            resize_failures: 1,
            suppressed_actuations: 2,
            dropped_actuations: 3,
            delayed_actuations: 4,
            partial_actuations: 5,
            pending_actuations: Vec::new(),
            apps: Vec::new(),
            scheduler_backoff: RequeueBackoff::new(),
            arbiter: None,
            clipped_allocations: 0,
            shed_decisions: 0,
            shed_app_ids: Vec::new(),
            starvation_watermark: 0,
            violations_while_shedding: 0,
        };
        let bytes = ck.to_bytes();
        let back = ControllerCheckpoint::from_bytes(&bytes).expect("round trip");
        assert_eq!(back, ck);
        assert_eq!(back.ticks(), 7);
        assert_eq!(back.app_count(), 0);
    }

    #[test]
    fn arbitrated_checkpoint_round_trips() {
        use evolve_control::ArbiterConfig;
        let ck = ControllerCheckpoint {
            at: SimTime::from_secs(90),
            ticks: 18,
            resize_failures: 0,
            suppressed_actuations: 0,
            dropped_actuations: 0,
            delayed_actuations: 0,
            partial_actuations: 0,
            pending_actuations: Vec::new(),
            apps: Vec::new(),
            scheduler_backoff: RequeueBackoff::new(),
            arbiter: Some(CapacityArbiter::new(
                ArbiterConfig::default().with_headroom_fraction(0.2),
            )),
            clipped_allocations: 9,
            shed_decisions: 4,
            shed_app_ids: vec![AppId::new(3), AppId::new(7)],
            starvation_watermark: 11,
            violations_while_shedding: 2,
        };
        let back = ControllerCheckpoint::from_bytes(&ck.to_bytes()).expect("round trip");
        assert_eq!(back, ck);
        assert_eq!(back.arbiter.as_ref().unwrap().config().headroom_fraction, 0.2);
    }

    #[test]
    fn wrong_magic_is_rejected() {
        let ck = ControllerCheckpoint {
            at: SimTime::ZERO,
            ticks: 0,
            resize_failures: 0,
            suppressed_actuations: 0,
            dropped_actuations: 0,
            delayed_actuations: 0,
            partial_actuations: 0,
            pending_actuations: Vec::new(),
            apps: Vec::new(),
            scheduler_backoff: RequeueBackoff::new(),
            arbiter: None,
            clipped_allocations: 0,
            shed_decisions: 0,
            shed_app_ids: Vec::new(),
            starvation_watermark: 0,
            violations_while_shedding: 0,
        };
        let mut bytes = ck.to_bytes();
        bytes[0] ^= 0xff;
        let err = ControllerCheckpoint::from_bytes(&bytes).unwrap_err();
        assert!(matches!(err, Error::CorruptCheckpoint(_)), "{err}");
    }

    #[test]
    fn truncation_and_trailing_garbage_are_rejected() {
        let ck = ControllerCheckpoint {
            at: SimTime::from_secs(1),
            ticks: 1,
            resize_failures: 0,
            suppressed_actuations: 0,
            dropped_actuations: 0,
            delayed_actuations: 0,
            partial_actuations: 0,
            pending_actuations: Vec::new(),
            apps: Vec::new(),
            scheduler_backoff: RequeueBackoff::new(),
            arbiter: None,
            clipped_allocations: 0,
            shed_decisions: 0,
            shed_app_ids: Vec::new(),
            starvation_watermark: 0,
            violations_while_shedding: 0,
        };
        let bytes = ck.to_bytes();
        assert!(ControllerCheckpoint::from_bytes(&bytes[..bytes.len() - 1]).is_err());
        let mut longer = bytes.clone();
        longer.push(0);
        assert!(ControllerCheckpoint::from_bytes(&longer).is_err());
    }
}
