//! The EVOLVE policy: multi-resource adaptive PID control with
//! vertical-first, horizontal-on-saturation scaling.

use evolve_control::{
    DegradationGuard, LoadPredictor, MultiResourceConfig, MultiResourceController,
};
use evolve_telemetry::trace::{ControlExplain, PidTermsTrace};
use evolve_telemetry::{Ewma, SlidingQuantile};
use evolve_types::codec::{Codec, Decoder, Encoder};
use evolve_types::{Error, Resource, ResourceVec, Result};
use serde::{Deserialize, Serialize};

use crate::policy::{
    control_error_with_margin, AutoscalePolicy, ObservedAppState, PolicyDecision, PolicyInput,
};

/// Leading byte of an EVOLVE policy checkpoint blob (distinguishes it
/// from the HPA/VPA baselines when a checkpoint is restored into the
/// wrong manager kind).
const EVOLVE_POLICY_TAG: u8 = 1;

/// Tunables of [`EvolvePolicy`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EvolvePolicyConfig {
    /// Per-replica allocation floor.
    pub min_alloc: ResourceVec,
    /// Per-replica allocation ceiling (vertical range; beyond it the
    /// policy scales horizontally).
    pub max_alloc: ResourceVec,
    /// Replica bounds.
    pub min_replicas: u32,
    /// Replica upper bound.
    pub max_replicas: u32,
    /// Control ticks to wait between horizontal actions (hysteresis).
    pub scale_cooldown_ticks: u32,
    /// Disable the multi-resource extension (1-D CPU ablation).
    pub cpu_only: bool,
    /// Disable on-line gain adaptation (fixed-gain ablation).
    pub fixed_gains: bool,
    /// Disable the load predictor (reactive-only ablation).
    pub predictive: bool,
    /// Fractional safety margin inside the PLO the controller steers to
    /// (0.25 → a 100 ms objective is controlled to a 75 ms setpoint).
    pub target_margin: f64,
}

impl Default for EvolvePolicyConfig {
    fn default() -> Self {
        EvolvePolicyConfig {
            min_alloc: ResourceVec::new(100.0, 256.0, 5.0, 5.0),
            max_alloc: ResourceVec::new(8_000.0, 16_384.0, 250.0, 600.0),
            min_replicas: 1,
            max_replicas: 64,
            scale_cooldown_ticks: 3,
            cpu_only: false,
            fixed_gains: false,
            predictive: true,
            target_margin: 0.35,
        }
    }
}

impl EvolvePolicyConfig {
    /// The CPU-only ablation variant.
    #[must_use]
    pub fn cpu_only(mut self) -> Self {
        self.cpu_only = true;
        self
    }

    /// The fixed-gain ablation variant.
    #[must_use]
    pub fn fixed_gains(mut self) -> Self {
        self.fixed_gains = true;
        self
    }
}

/// Per-application EVOLVE controller state.
#[derive(Debug, Clone)]
pub struct EvolvePolicy {
    config: EvolvePolicyConfig,
    controller: MultiResourceController,
    predictor: LoadPredictor,
    /// Smooths the noisy window percentile before the error computation
    /// (a 5 s window holds a few hundred samples; its p99 jitters).
    measured_filter: Ewma,
    /// Recent request rates (one sample per window) — the burstiness
    /// estimate that sizes the peak-provisioning floor.
    rate_history: SlidingQuantile,
    replicas: u32,
    /// Latches the replica count from the first observed window so the
    /// policy starts from the deployment's actual size.
    latched: bool,
    cooldown: u32,
    scale_actions: u64,
    is_job: bool,
    /// Hold-last-safe / watchdog / re-engagement state for blackouts.
    guard: DegradationGuard,
    /// Per-replica usage from the last fresh window — anchors the
    /// watchdog floor when signals go dark.
    last_usage_pr: ResourceVec,
    /// Trace-only snapshot of the last stepped control cycle. Excluded
    /// from checkpoints: the decision trace is observability, not state.
    last_error: f64,
    last_smoothed: f64,
    last_attribution: ResourceVec,
    last_saturated_up: bool,
    last_saturated_down: bool,
}

impl EvolvePolicy {
    /// Creates the policy for a service (`is_job = false`) or a batch/HPC
    /// job (`is_job = true`, horizontal scaling disabled).
    #[must_use]
    pub fn new(config: EvolvePolicyConfig, initial_replicas: u32, is_job: bool) -> Self {
        let mut mc = MultiResourceConfig::new(config.min_alloc, config.max_alloc);
        if config.cpu_only {
            mc = mc.cpu_only();
        }
        if config.fixed_gains {
            mc = mc.fixed_gains();
        }
        EvolvePolicy {
            config,
            controller: MultiResourceController::new(mc),
            predictor: LoadPredictor::new(0.5, 0.3, 2.0, 0.1),
            measured_filter: Ewma::new(0.5),
            rate_history: SlidingQuantile::new(24),
            replicas: initial_replicas.max(1),
            latched: false,
            cooldown: 0,
            scale_actions: 0,
            is_job,
            guard: DegradationGuard::default(),
            last_usage_pr: ResourceVec::ZERO,
            last_error: 0.0,
            last_smoothed: 0.0,
            last_attribution: ResourceVec::ZERO,
            last_saturated_up: false,
            last_saturated_down: false,
        }
    }

    /// Consecutive control ticks without a fresh signal.
    #[must_use]
    pub fn dark_ticks(&self) -> u32 {
        self.guard.dark_ticks()
    }

    /// Horizontal scaling actions taken so far.
    #[must_use]
    pub fn scale_actions(&self) -> u64 {
        self.scale_actions
    }

    /// Gain adaptations applied by the controller so far.
    #[must_use]
    pub fn adaptations(&self) -> u64 {
        self.controller.adaptations()
    }

    /// Current gains on a resource dimension (for the F2/T5 figures).
    #[must_use]
    pub fn gains_of(&self, resource: Resource) -> (f64, f64, f64) {
        self.controller.gains_of(resource)
    }
}

impl AutoscalePolicy for EvolvePolicy {
    fn name(&self) -> &'static str {
        if self.config.cpu_only {
            "evolve-cpu-only"
        } else if self.config.fixed_gains {
            "evolve-fixed-gains"
        } else {
            "evolve"
        }
    }

    fn decide(&mut self, input: &PolicyInput<'_>) -> Option<PolicyDecision> {
        let w = input.window;
        if input.signal.is_degraded() {
            // Signals are dark. Silence is not idleness: the PID is not
            // stepped (integrator frozen), no scale-in happens, and the
            // last-safe per-replica target is held. Once the watchdog
            // trips, the hold decays toward the usage-anchored floor —
            // never below it — so a stale over-allocation cannot persist
            // indefinitely.
            let floor =
                (self.last_usage_pr * 1.8).min(&self.config.max_alloc).max(&self.config.min_alloc);
            let held = match self.guard.on_dark(&floor) {
                Some(v) => v,
                // Dark before any output was recorded: hold whatever the
                // stale window reports, or leave the app untouched when
                // even that is unknown.
                None if w.alloc_per_replica.is_zero() => return None,
                None => w.alloc_per_replica,
            };
            return Some(PolicyDecision {
                per_replica: held,
                replicas: self.replicas.max(self.config.min_replicas),
            });
        }
        if !self.latched {
            let current = w.running_replicas + w.pending_replicas;
            if current > 0 {
                self.replicas = current.max(self.config.min_replicas);
            }
            self.latched = true;
            // The first window is dominated by container-start queueing
            // (requests that waited for the replicas to boot); acting on
            // it would punish a transient the controller cannot fix.
            return Some(PolicyDecision {
                per_replica: self.guard.on_signal(w.alloc_per_replica),
                replicas: self.replicas,
            });
        }
        let rate = w.arrivals as f64 / input.dt_secs.max(1e-9);
        self.predictor.observe(rate);
        self.rate_history.observe(rate);

        let measured = w.measured_for(&input.app.plo);
        let alloc_pr = w.alloc_per_replica;
        let usage_pr = w.usage_per_replica();

        // No signal (idle window): hold allocations, but allow scale-in on
        // a long-idle service.
        let Some(measured) = measured else {
            if !self.is_job && w.arrivals == 0 && self.replicas > self.config.min_replicas {
                if self.cooldown > 0 {
                    self.cooldown -= 1;
                } else {
                    self.replicas -= 1;
                    self.scale_actions += 1;
                    self.cooldown = self.config.scale_cooldown_ticks;
                }
            }
            return Some(PolicyDecision {
                per_replica: self.guard.on_signal(alloc_pr),
                replicas: self.replicas,
            });
        };
        self.last_usage_pr = usage_pr;

        let smoothed =
            if measured.is_finite() { self.measured_filter.observe(measured) } else { measured };
        let error = control_error_with_margin(&input.app.plo, smoothed, self.config.target_margin);
        let per_replica_rps = if w.running_replicas > 0 {
            Some(w.throughput_rps / f64::from(w.running_replicas))
        } else {
            None
        };
        let mut decision = self.controller.step_with_profile(
            alloc_pr,
            usage_pr,
            per_replica_rps,
            error,
            input.dt_secs,
        );
        self.last_error = error;
        self.last_smoothed = smoothed;
        self.last_attribution = decision.attribution;
        self.last_saturated_up = decision.saturated_up;
        self.last_saturated_down = decision.saturated_down;
        // Burst headroom: provision for the recently observed peak rate,
        // not the instantaneous one — bursty traffic (MMPP state flips,
        // recurring spikes) would otherwise buy one violating window on
        // every upswing. The floor is usage scaled by the p90/current
        // rate ratio, capped at 4x.
        if !self.is_job && rate > 1e-9 {
            if let Some(p90) = self.rate_history.quantile(0.9) {
                let burst = (p90 / rate).clamp(1.0, 4.0);
                if burst > 1.05 {
                    let floor = (usage_pr * (burst * 1.15))
                        .min(&self.config.max_alloc)
                        .max(&self.config.min_alloc);
                    decision.target = decision.target.max(&floor);
                }
            }
        }

        if !self.is_job {
            // Usage-anchored replica floor: the fewest replicas whose
            // vertical ceiling still fits the measured demand with 80%
            // headroom. Scale-out to the floor is immediate (demand is
            // real); everything else is hysteretic around it.
            let total_usage = usage_pr * f64::from(w.running_replicas.max(1));
            let mut floor_n = 1u32;
            for r in Resource::ALL {
                let cap = self.config.max_alloc[r];
                if cap > 0.0 {
                    floor_n = floor_n.max((total_usage[r] * 1.8 / cap).ceil() as u32);
                }
            }
            let floor_n = floor_n.clamp(self.config.min_replicas, self.config.max_replicas);
            if self.replicas < floor_n {
                self.replicas = floor_n;
                self.scale_actions += 1;
            } else if self.cooldown > 0 {
                self.cooldown -= 1;
            } else if (decision.saturated_up || input.resize_failures > 0 || w.timeouts > 10)
                && error > 0.15
                && self.replicas < self.config.max_replicas
            {
                // Vertical growth exhausted (ceiling hit or node headroom
                // blocked the resize) or requests are being dropped under
                // a real violation: go horizontal.
                let growth = ((1.0 + error).ceil() as u32).clamp(1, 2);
                self.replicas = (self.replicas + growth).min(self.config.max_replicas);
                self.scale_actions += 1;
                self.cooldown = self.config.scale_cooldown_ticks;
            } else if self.config.predictive
                && error < -0.1
                && self.predictor.predicted() > rate * 1.5
                && rate > 0.0
                && self.replicas < self.config.max_replicas
            {
                // Load trending up sharply: scale ahead of the ramp.
                self.replicas += 1;
                self.scale_actions += 1;
                self.cooldown = self.config.scale_cooldown_ticks;
            } else if error < -0.2 && self.replicas > floor_n {
                // Compliant with slack and above the demand floor: step
                // back down one replica — but only when the survivors'
                // *current* allocation already holds the whole load with
                // 15% headroom, so the drop never opens a capacity hole.
                let survivor_capacity = alloc_pr * f64::from(self.replicas - 1);
                if (total_usage * 1.15).fits_within(&survivor_capacity) {
                    self.replicas -= 1;
                    self.scale_actions += 1;
                    self.cooldown = self.config.scale_cooldown_ticks;
                }
            }
        }

        // Re-engagement after a blackout is slew-limited: the first few
        // fresh outputs may move only a bounded step from the held value.
        Some(PolicyDecision {
            per_replica: self.guard.on_signal(decision.target),
            replicas: self.replicas,
        })
    }

    fn checkpoint(&self, enc: &mut Encoder) {
        EVOLVE_POLICY_TAG.encode(enc);
        self.controller.encode(enc);
        self.predictor.encode(enc);
        self.measured_filter.encode(enc);
        self.rate_history.encode(enc);
        self.replicas.encode(enc);
        self.latched.encode(enc);
        self.cooldown.encode(enc);
        self.scale_actions.encode(enc);
        self.guard.encode(enc);
        self.last_usage_pr.encode(enc);
    }

    fn restore(&mut self, dec: &mut Decoder<'_>) -> Result<()> {
        let tag = u8::decode(dec)?;
        if tag != EVOLVE_POLICY_TAG {
            return Err(Error::CorruptCheckpoint(format!(
                "policy tag {tag} is not an evolve policy blob"
            )));
        }
        self.controller = MultiResourceController::decode(dec)?;
        self.predictor = LoadPredictor::decode(dec)?;
        self.measured_filter = Ewma::decode(dec)?;
        self.rate_history = SlidingQuantile::decode(dec)?;
        self.replicas = u32::decode(dec)?;
        self.latched = bool::decode(dec)?;
        self.cooldown = u32::decode(dec)?;
        self.scale_actions = u64::decode(dec)?;
        self.guard = DegradationGuard::decode(dec)?;
        self.last_usage_pr = ResourceVec::decode(dec)?;
        Ok(())
    }

    fn reconstruct(&mut self, observed: &ObservedAppState) {
        // Level-triggered rebuild: the cluster's current replica count and
        // granted per-replica request are the only trustworthy facts, so
        // they become the hold-last-safe baseline. The guard slew-limits
        // the first few outputs away from that baseline, and the armed
        // bumpless seed makes the PID's first step reproduce the current
        // allocation instead of jumping to an unwarmed setpoint.
        if observed.replicas > 0 {
            self.replicas = observed.replicas.max(self.config.min_replicas);
        }
        self.latched = true;
        if !observed.alloc_per_replica.is_zero() {
            self.guard.seed_recovery(observed.alloc_per_replica);
            self.last_usage_pr = (observed.alloc_per_replica * 0.5).max(&self.config.min_alloc);
        }
        self.controller.arm_bumpless();
    }

    fn explain(&self) -> Option<ControlExplain> {
        let mut pid = [PidTermsTrace::default(); 4];
        let mut gains = [(0.0, 0.0, 0.0); 4];
        for r in Resource::ALL {
            let t = self.controller.pid_terms(r);
            pid[r.index()] = PidTermsTrace { p: t.p, i: t.i, d: t.d, output: t.output };
            gains[r.index()] = self.controller.gains_of(r);
        }
        Some(ControlExplain {
            pid,
            gains,
            attribution: self.last_attribution,
            saturated_up: self.last_saturated_up,
            saturated_down: self.last_saturated_down,
            adaptations: self.controller.adaptations(),
            dark_ticks: self.guard.dark_ticks(),
            watchdog_tripped: self.guard.watchdog_tripped(),
            forecast: self.predictor.predicted(),
            raw_forecast: self.predictor.raw_forecast(),
            trend: self.predictor.trend(),
            smoothed: self.last_smoothed,
            error: self.last_error,
        })
    }

    fn reset_to_spec(&mut self) {
        // Naive restart: forget everything and trust the constructor
        // defaults. Deliberately does NOT look at the cluster — `latched`
        // is set so the first window is actuated at the spec's initial
        // replica count, demonstrating why level-triggered reconstruction
        // matters.
        let fresh = EvolvePolicy::new(self.config, 1, self.is_job);
        *self = fresh;
        self.latched = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::SignalQuality;
    use evolve_sim::{AppStatus, AppWindow};
    use evolve_types::{AppId, SimDuration, SimTime};
    use evolve_workload::{PloSpec, WorldClass};

    fn status() -> AppStatus {
        AppStatus {
            id: AppId::new(0),
            name: "svc".into(),
            world: WorldClass::Microservice,
            plo: PloSpec::LatencyP99 { target_ms: 100.0 },
            priority: evolve_types::PriorityClass::default(),
        }
    }

    fn window(p99: Option<f64>, arrivals: u64, alloc: f64, usage: f64) -> AppWindow {
        AppWindow {
            at: SimTime::from_secs(10),
            duration: SimDuration::from_secs(5),
            arrivals,
            completions: arrivals,
            timeouts: 0,
            shed_requests: 0,
            oom_kills: 0,
            p99_ms: p99,
            mean_ms: p99.map(|v| v / 2.0),
            throughput_rps: arrivals as f64 / 5.0,
            usage: ResourceVec::splat(usage),
            alloc: ResourceVec::splat(alloc),
            alloc_per_replica: ResourceVec::splat(alloc),
            running_replicas: 1,
            pending_replicas: 0,
            progress: None,
            projected_makespan_s: None,
        }
    }

    #[test]
    fn violation_grows_allocation() {
        let mut p = EvolvePolicy::new(EvolvePolicyConfig::default(), 1, false);
        let st = status();
        let w = window(Some(200.0), 100, 1_000.0, 950.0);
        // First window is the warmup skip; the second must act.
        let first = p
            .decide(&PolicyInput {
                app: &st,
                window: &w,
                dt_secs: 5.0,
                resize_failures: 0,
                signal: SignalQuality::Fresh,
            })
            .expect("decision");
        assert_eq!(first.per_replica, w.alloc_per_replica);
        let d = p
            .decide(&PolicyInput {
                app: &st,
                window: &w,
                dt_secs: 5.0,
                resize_failures: 0,
                signal: SignalQuality::Fresh,
            })
            .expect("decision");
        assert!(d.per_replica.cpu() > 1_000.0, "cpu {}", d.per_replica.cpu());
    }

    #[test]
    fn slack_shrinks_allocation() {
        let mut p = EvolvePolicy::new(EvolvePolicyConfig::default(), 1, false);
        let st = status();
        let mut alloc = 4_000.0;
        for _ in 0..10 {
            let w = window(Some(10.0), 100, alloc, 100.0);
            let d = p
                .decide(&PolicyInput {
                    app: &st,
                    window: &w,
                    dt_secs: 5.0,
                    resize_failures: 0,
                    signal: SignalQuality::Fresh,
                })
                .expect("decision");
            alloc = d.per_replica.cpu();
        }
        assert!(alloc < 2_000.0, "cpu {alloc}");
    }

    #[test]
    fn saturation_triggers_horizontal_scaling() {
        let cfg = EvolvePolicyConfig {
            max_alloc: ResourceVec::splat(1_100.0),
            min_alloc: ResourceVec::splat(100.0),
            ..Default::default()
        };
        let mut p = EvolvePolicy::new(cfg, 1, false);
        let st = status();
        let mut replicas = 1;
        for _ in 0..10 {
            let w = window(Some(500.0), 200, 1_090.0, 1_080.0);
            let d = p
                .decide(&PolicyInput {
                    app: &st,
                    window: &w,
                    dt_secs: 5.0,
                    resize_failures: 0,
                    signal: SignalQuality::Fresh,
                })
                .expect("decision");
            replicas = d.replicas;
        }
        assert!(replicas > 1, "expected scale-out, got {replicas}");
        assert!(p.scale_actions() > 0);
    }

    #[test]
    fn jobs_never_scale_horizontally() {
        let cfg = EvolvePolicyConfig {
            max_alloc: ResourceVec::splat(1_100.0),
            min_alloc: ResourceVec::splat(100.0),
            ..Default::default()
        };
        let mut p = EvolvePolicy::new(cfg, 4, true);
        let st = AppStatus {
            plo: PloSpec::Deadline { deadline: SimDuration::from_secs(100) },
            world: WorldClass::BigData,
            ..status()
        };
        let mut first = None;
        for _ in 0..10 {
            let mut w = window(None, 0, 1_090.0, 1_080.0);
            w.running_replicas = 4;
            w.projected_makespan_s = Some(500.0); // way over deadline
            let d = p
                .decide(&PolicyInput {
                    app: &st,
                    window: &w,
                    dt_secs: 5.0,
                    resize_failures: 0,
                    signal: SignalQuality::Fresh,
                })
                .expect("decision");
            // Replica count never moves for jobs, no matter the pressure.
            assert_eq!(d.replicas, *first.get_or_insert(d.replicas));
        }
    }

    #[test]
    fn idle_service_scales_in() {
        let mut p = EvolvePolicy::new(EvolvePolicyConfig::default(), 5, false);
        let st = status();
        let mut replicas = 5;
        for _ in 0..30 {
            let w = window(None, 0, 1_000.0, 0.0);
            let d = p
                .decide(&PolicyInput {
                    app: &st,
                    window: &w,
                    dt_secs: 5.0,
                    resize_failures: 0,
                    signal: SignalQuality::Fresh,
                })
                .expect("decision");
            replicas = d.replicas;
        }
        assert_eq!(replicas, 1);
    }

    #[test]
    fn degraded_signal_holds_last_safe_output() {
        let mut p = EvolvePolicy::new(EvolvePolicyConfig::default(), 3, false);
        let st = status();
        let mut w = window(Some(50.0), 200, 1_000.0, 600.0);
        w.running_replicas = 3;
        let mut steady = None;
        for _ in 0..6 {
            steady = p.decide(&PolicyInput {
                app: &st,
                window: &w,
                dt_secs: 5.0,
                resize_failures: 0,
                signal: SignalQuality::Fresh,
            });
        }
        let steady = steady.expect("decision");
        // Blackout: the manager replays the stale window. Usage was 200
        // per replica, so the watchdog floor is 360 cpu — replicas must
        // hold and allocation may never fall below that floor, no matter
        // how long the blackout lasts.
        for _ in 0..20 {
            let d = p
                .decide(&PolicyInput {
                    app: &st,
                    window: &w,
                    dt_secs: 5.0,
                    resize_failures: 0,
                    signal: SignalQuality::Stale,
                })
                .expect("decision");
            assert_eq!(d.replicas, steady.replicas, "no scale-in while dark");
            assert!(d.per_replica.cpu() >= 360.0 - 1e-9, "cpu {}", d.per_replica.cpu());
        }
        assert_eq!(p.dark_ticks(), 20);
        // Re-engagement: the first fresh decision moves a bounded step
        // from the held output, not a cliff.
        let before = p.decide(&PolicyInput {
            app: &st,
            window: &w,
            dt_secs: 5.0,
            resize_failures: 0,
            signal: SignalQuality::Fresh,
        });
        let d = before.expect("decision");
        assert!(d.per_replica.cpu() > 0.0);
        assert_eq!(p.dark_ticks(), 0);
    }

    #[test]
    fn missing_signal_is_not_idleness() {
        // A synthetic empty window (blackout with no cached scrape) must
        // not trigger the idle scale-in path — contrast with
        // `idle_service_scales_in`, where the empty window is a *fresh*
        // measurement.
        let mut p = EvolvePolicy::new(EvolvePolicyConfig::default(), 5, false);
        let st = status();
        // p99 of 70 ms sits on the 65 ms setpoint (100 ms PLO, 35%
        // margin): no scale action while fresh, so the blackout starts
        // from exactly 5 replicas.
        let mut warm = window(Some(70.0), 100, 1_000.0, 400.0);
        warm.running_replicas = 5;
        for _ in 0..3 {
            p.decide(&PolicyInput {
                app: &st,
                window: &warm,
                dt_secs: 5.0,
                resize_failures: 0,
                signal: SignalQuality::Fresh,
            });
        }
        let empty = window(None, 0, 0.0, 0.0);
        for _ in 0..30 {
            let d = p
                .decide(&PolicyInput {
                    app: &st,
                    window: &empty,
                    dt_secs: 5.0,
                    resize_failures: 0,
                    signal: SignalQuality::Missing,
                })
                .expect("decision");
            assert_eq!(d.replicas, 5, "silence must not scale the service in");
            assert!(d.per_replica.cpu() > 0.0, "never scale allocation to zero");
        }
    }

    #[test]
    fn ablation_names() {
        assert_eq!(EvolvePolicy::new(EvolvePolicyConfig::default(), 1, false).name(), "evolve");
        assert_eq!(
            EvolvePolicy::new(EvolvePolicyConfig::default().cpu_only(), 1, false).name(),
            "evolve-cpu-only"
        );
        assert_eq!(
            EvolvePolicy::new(EvolvePolicyConfig::default().fixed_gains(), 1, false).name(),
            "evolve-fixed-gains"
        );
    }
}
