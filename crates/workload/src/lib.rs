//! Workload generation for the EVOLVE platform.
//!
//! EVOLVE's thesis is that the Big-Data, HPC and Cloud worlds should share
//! one consolidated infrastructure. This crate provides the synthetic
//! stand-ins for all three (the substitution for the paper's production
//! workloads and traces):
//!
//! * [`LoadProfile`] implementations — constant, diurnal, ramp,
//!   flash-crowd, Markov-modulated (bursty) and trace-playback request
//!   rates — plus [`PoissonArrivals`], a non-homogeneous Poisson sampler
//!   over any profile.
//! * [`RequestClass`] — per-request multi-resource demand vectors with
//!   configurable variability, drawn from heavy-tailed distributions.
//! * Application archetypes: [`ServiceSpec`] (latency-critical cloud
//!   microservice), [`BatchJobSpec`] (staged big-data dataflow job) and
//!   [`HpcJobSpec`] (gang-scheduled iterative HPC job).
//! * [`WorkloadMix`] and the scenario library — the pre-built mixes each
//!   experiment in EXPERIMENTS.md uses.
//! * [`ScenarioSpec`] — the declarative scenario model behind the
//!   checked-in `scenarios/*.toml` files, parsed by a hand-rolled
//!   minimal-TOML reader with typed [`ScenarioError`]s.
//!
//! # Examples
//!
//! ```
//! use evolve_workload::{DiurnalLoad, LoadProfile, PoissonArrivals};
//! use evolve_types::{SimDuration, SimTime};
//! use rand::SeedableRng;
//! use rand_chacha::ChaCha8Rng;
//!
//! let profile = DiurnalLoad::new(100.0, 0.8, SimDuration::from_secs(3600));
//! let mut rng = ChaCha8Rng::seed_from_u64(7);
//! let mut arrivals = PoissonArrivals::new(Box::new(profile));
//! let first = arrivals.next_after(SimTime::ZERO, &mut rng).unwrap();
//! assert!(first > SimTime::ZERO);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod apps;
mod arrival;
mod request;
mod sampling;
mod scenario;
mod spec;
mod toml_mini;

pub use apps::{BatchJobSpec, HpcJobSpec, PloSpec, ServiceSpec, StageSpec, WorldClass};
pub use arrival::{
    ConstantLoad, DiurnalLoad, FlashCrowdLoad, LoadProfile, MmppLoad, PoissonArrivals, RampLoad,
    TraceLoad,
};
pub use evolve_types::PriorityClass;
pub use request::{Request, RequestClass};
pub use sampling::{
    sample_exponential, sample_lognormal, sample_lognormal_with, sample_pareto,
    sample_poisson_count, sample_standard_normal, LogNormal, SamplingMode,
};
pub use scenario::{LoadSpec, Scenario, WorkloadMix};
pub use spec::{
    ArbiterSpec, BatchEntry, ClusterSpec, FaultSpec, HpcEntry, ProbeSpec, ScenarioError,
    ScenarioSpec, ServiceEntry, StageEntry, BUILTIN_NAMES, DEFAULT_NODE_CAPACITY,
};
