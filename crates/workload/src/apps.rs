//! Application archetypes for the three converged "worlds".
//!
//! * **Cloud** — [`ServiceSpec`]: a user-facing microservice under an
//!   open-loop request stream with a tail-latency PLO.
//! * **Big-Data** — [`BatchJobSpec`]: a staged dataflow job (think
//!   Spark-style map/shuffle/reduce) with a throughput or deadline PLO.
//! * **HPC** — [`HpcJobSpec`]: a gang of ranks that must be co-scheduled
//!   and iterate in lockstep, with a completion deadline.

use evolve_types::{PriorityClass, ResourceVec, SimDuration};
use serde::{Deserialize, Serialize};

use crate::request::RequestClass;

/// Which world an application belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorldClass {
    /// Latency-critical cloud microservice.
    Microservice,
    /// Throughput-oriented big-data batch job.
    BigData,
    /// Gang-scheduled high-performance-computing job.
    Hpc,
}

impl std::fmt::Display for WorldClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            WorldClass::Microservice => "cloud",
            WorldClass::BigData => "bigdata",
            WorldClass::Hpc => "hpc",
        })
    }
}

/// A performance-level objective, the user-facing contract that replaces
/// raw resource requests.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PloSpec {
    /// 99th-percentile latency at or below `target_ms` milliseconds.
    LatencyP99 {
        /// Target in milliseconds.
        target_ms: f64,
    },
    /// Mean latency at or below `target_ms` milliseconds.
    LatencyMean {
        /// Target in milliseconds.
        target_ms: f64,
    },
    /// Sustained throughput of at least `target_rps` completions/second.
    Throughput {
        /// Target completions per second.
        target_rps: f64,
    },
    /// The job must finish within `deadline` of its submission.
    Deadline {
        /// Allowed makespan.
        deadline: SimDuration,
    },
}

impl PloSpec {
    /// The scalar target of the objective (ms, rps or seconds).
    #[must_use]
    pub fn target(&self) -> f64 {
        match self {
            PloSpec::LatencyP99 { target_ms } | PloSpec::LatencyMean { target_ms } => *target_ms,
            PloSpec::Throughput { target_rps } => *target_rps,
            PloSpec::Deadline { deadline } => deadline.as_secs_f64(),
        }
    }

    /// `true` for objectives where *lower measured values are better*
    /// (latency, makespan).
    #[must_use]
    pub fn upper_bound(&self) -> bool {
        !matches!(self, PloSpec::Throughput { .. })
    }
}

/// A latency-critical cloud microservice.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceSpec {
    /// Human-readable name.
    pub name: String,
    /// The performance objective.
    pub plo: PloSpec,
    /// Demand distribution of this service's requests.
    pub request_class: RequestClass,
    /// Fixed per-replica memory overhead (runtime, caches), MiB.
    pub base_memory: f64,
    /// Initial number of replicas.
    pub initial_replicas: u32,
    /// Initial per-replica allocation (what a user would have written as
    /// `requests:` in a pod spec).
    pub initial_alloc: ResourceVec,
    /// How the capacity arbiter treats this service under cluster
    /// overload.
    pub priority: PriorityClass,
}

impl ServiceSpec {
    /// Creates a service spec with one initial replica.
    ///
    /// # Panics
    ///
    /// Panics when `base_memory` is negative or `initial_alloc` is
    /// invalid.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        plo: PloSpec,
        request_class: RequestClass,
        initial_alloc: ResourceVec,
    ) -> Self {
        assert!(initial_alloc.is_valid(), "initial allocation must be valid");
        ServiceSpec {
            name: name.into(),
            plo,
            request_class,
            base_memory: 64.0,
            initial_replicas: 1,
            initial_alloc,
            priority: PriorityClass::default(),
        }
    }

    /// Overrides the overload priority class.
    #[must_use]
    pub fn with_priority(mut self, priority: PriorityClass) -> Self {
        self.priority = priority;
        self
    }

    /// Overrides the per-replica base memory overhead (MiB).
    ///
    /// # Panics
    ///
    /// Panics when negative.
    #[must_use]
    pub fn with_base_memory(mut self, mib: f64) -> Self {
        assert!(mib >= 0.0, "base memory must be non-negative");
        self.base_memory = mib;
        self
    }

    /// Overrides the initial replica count.
    ///
    /// # Panics
    ///
    /// Panics when zero.
    #[must_use]
    pub fn with_initial_replicas(mut self, replicas: u32) -> Self {
        assert!(replicas > 0, "initial replicas must be positive");
        self.initial_replicas = replicas;
        self
    }
}

/// One stage of a big-data job.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StageSpec {
    /// Number of parallel tasks in the stage.
    pub tasks: u32,
    /// Work per task (same units as request demands: mcore·s, MiB
    /// working set, MB disk, MB net).
    pub work_per_task: ResourceVec,
    /// Records processed per task, for throughput accounting.
    pub records_per_task: u64,
}

impl StageSpec {
    /// Creates a stage.
    ///
    /// # Panics
    ///
    /// Panics when `tasks` is zero or the work vector is invalid/zero.
    #[must_use]
    pub fn new(tasks: u32, work_per_task: ResourceVec, records_per_task: u64) -> Self {
        assert!(tasks > 0, "stage needs at least one task");
        assert!(work_per_task.is_valid() && !work_per_task.is_zero(), "work must be non-zero");
        StageSpec { tasks, work_per_task, records_per_task }
    }

    /// Total records produced by the stage.
    #[must_use]
    pub fn total_records(&self) -> u64 {
        self.records_per_task * u64::from(self.tasks)
    }
}

/// A staged big-data batch job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchJobSpec {
    /// Human-readable name.
    pub name: String,
    /// Stages executed in order; tasks within a stage run in parallel.
    pub stages: Vec<StageSpec>,
    /// The performance objective (throughput or deadline).
    pub plo: PloSpec,
    /// Per-task executor allocation when run unmanaged (the static
    /// baseline).
    pub task_alloc: ResourceVec,
    /// Maximum tasks in flight at once (executor pool cap).
    pub max_parallel_tasks: u32,
    /// How the capacity arbiter treats this job under cluster overload.
    pub priority: PriorityClass,
}

impl BatchJobSpec {
    /// Creates a batch job.
    ///
    /// # Panics
    ///
    /// Panics when `stages` is empty or `max_parallel_tasks` is zero.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        stages: Vec<StageSpec>,
        plo: PloSpec,
        task_alloc: ResourceVec,
        max_parallel_tasks: u32,
    ) -> Self {
        assert!(!stages.is_empty(), "batch job needs at least one stage");
        assert!(max_parallel_tasks > 0, "parallel task cap must be positive");
        BatchJobSpec {
            name: name.into(),
            stages,
            plo,
            task_alloc,
            max_parallel_tasks,
            priority: PriorityClass::default(),
        }
    }

    /// Overrides the overload priority class.
    #[must_use]
    pub fn with_priority(mut self, priority: PriorityClass) -> Self {
        self.priority = priority;
        self
    }

    /// Total records across all stages.
    #[must_use]
    pub fn total_records(&self) -> u64 {
        self.stages.iter().map(StageSpec::total_records).sum()
    }

    /// Total work across all stages and tasks.
    #[must_use]
    pub fn total_work(&self) -> ResourceVec {
        self.stages.iter().map(|s| s.work_per_task * f64::from(s.tasks)).sum()
    }
}

/// A gang-scheduled HPC job: `gang_size` ranks iterate in lockstep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HpcJobSpec {
    /// Human-readable name.
    pub name: String,
    /// Number of ranks that must run simultaneously.
    pub gang_size: u32,
    /// Iterations (synchronization rounds).
    pub iterations: u32,
    /// Work per rank per iteration.
    pub work_per_iteration: ResourceVec,
    /// Per-rank allocation.
    pub rank_alloc: ResourceVec,
    /// Completion deadline from submission.
    pub deadline: SimDuration,
    /// How the capacity arbiter treats this job under cluster overload.
    pub priority: PriorityClass,
}

impl HpcJobSpec {
    /// Creates an HPC job.
    ///
    /// # Panics
    ///
    /// Panics when `gang_size` or `iterations` is zero, or the deadline is
    /// zero.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        gang_size: u32,
        iterations: u32,
        work_per_iteration: ResourceVec,
        rank_alloc: ResourceVec,
        deadline: SimDuration,
    ) -> Self {
        assert!(gang_size > 0, "gang size must be positive");
        assert!(iterations > 0, "iterations must be positive");
        assert!(!deadline.is_zero(), "deadline must be positive");
        HpcJobSpec {
            name: name.into(),
            gang_size,
            iterations,
            work_per_iteration,
            rank_alloc,
            deadline,
            priority: PriorityClass::default(),
        }
    }

    /// Overrides the overload priority class.
    #[must_use]
    pub fn with_priority(mut self, priority: PriorityClass) -> Self {
        self.priority = priority;
        self
    }

    /// Total work per rank across all iterations.
    #[must_use]
    pub fn work_per_rank(&self) -> ResourceVec {
        self.work_per_iteration * f64::from(self.iterations)
    }

    /// The job's PLO expressed as a deadline objective.
    #[must_use]
    pub fn plo(&self) -> PloSpec {
        PloSpec::Deadline { deadline: self.deadline }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evolve_types::SimDuration;

    fn rc() -> RequestClass {
        RequestClass::new(
            "c",
            ResourceVec::new(10.0, 2.0, 0.5, 0.1),
            0.5,
            SimDuration::from_secs(5),
        )
    }

    #[test]
    fn plo_targets_and_bounds() {
        assert_eq!(PloSpec::LatencyP99 { target_ms: 100.0 }.target(), 100.0);
        assert!(PloSpec::LatencyP99 { target_ms: 100.0 }.upper_bound());
        assert!(PloSpec::LatencyMean { target_ms: 10.0 }.upper_bound());
        assert!(!PloSpec::Throughput { target_rps: 500.0 }.upper_bound());
        let d = PloSpec::Deadline { deadline: SimDuration::from_secs(60) };
        assert_eq!(d.target(), 60.0);
        assert!(d.upper_bound());
    }

    #[test]
    fn service_spec_builders() {
        let s = ServiceSpec::new(
            "api",
            PloSpec::LatencyP99 { target_ms: 50.0 },
            rc(),
            ResourceVec::splat(100.0),
        )
        .with_base_memory(256.0)
        .with_initial_replicas(3);
        assert_eq!(s.base_memory, 256.0);
        assert_eq!(s.initial_replicas, 3);
        assert_eq!(s.name, "api");
    }

    #[test]
    fn stage_record_accounting() {
        let st = StageSpec::new(10, ResourceVec::splat(5.0), 1000);
        assert_eq!(st.total_records(), 10_000);
    }

    #[test]
    fn batch_job_totals() {
        let job = BatchJobSpec::new(
            "etl",
            vec![
                StageSpec::new(4, ResourceVec::splat(10.0), 100),
                StageSpec::new(2, ResourceVec::splat(20.0), 50),
            ],
            PloSpec::Throughput { target_rps: 100.0 },
            ResourceVec::splat(500.0),
            8,
        );
        assert_eq!(job.total_records(), 500);
        assert_eq!(job.total_work(), ResourceVec::splat(80.0));
    }

    #[test]
    fn hpc_job_work_and_plo() {
        let job = HpcJobSpec::new(
            "cfd",
            8,
            100,
            ResourceVec::new(1000.0, 512.0, 1.0, 10.0),
            ResourceVec::splat(1000.0),
            SimDuration::from_mins(30),
        );
        assert_eq!(job.work_per_rank().cpu(), 100_000.0);
        assert_eq!(job.plo().target(), 1800.0);
    }

    #[test]
    fn world_class_display() {
        assert_eq!(WorldClass::Microservice.to_string(), "cloud");
        assert_eq!(WorldClass::BigData.to_string(), "bigdata");
        assert_eq!(WorldClass::Hpc.to_string(), "hpc");
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn batch_rejects_empty_stages() {
        let _ = BatchJobSpec::new(
            "x",
            vec![],
            PloSpec::Throughput { target_rps: 1.0 },
            ResourceVec::splat(1.0),
            1,
        );
    }

    #[test]
    #[should_panic(expected = "gang size must be positive")]
    fn hpc_rejects_zero_gang() {
        let _ = HpcJobSpec::new(
            "x",
            0,
            1,
            ResourceVec::splat(1.0),
            ResourceVec::splat(1.0),
            SimDuration::from_secs(1),
        );
    }
}
