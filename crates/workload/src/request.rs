//! Per-request demand modelling.
//!
//! Every request carries a multi-resource demand vector:
//!
//! | dimension | meaning for one request |
//! |---|---|
//! | CPU | millicore·seconds of compute to drain |
//! | Memory | MiB of working set held while the request is in flight |
//! | Disk I/O | MB to transfer at the replica's disk allocation |
//! | Net I/O | MB to transfer at the replica's network allocation |
//!
//! Demands are sampled log-normally around the class mean with a
//! configurable coefficient of variation — service times in real systems
//! are right-skewed, and the tail is what a p99 PLO fights.

use evolve_types::{AppId, Resource, ResourceVec, SimDuration, SimTime};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::sampling::{LogNormal, SamplingMode};

/// A class of requests with a common demand distribution.
///
/// # Examples
///
/// ```
/// use evolve_workload::RequestClass;
/// use evolve_types::{ResourceVec, SimDuration};
/// use rand::SeedableRng;
/// use rand_chacha::ChaCha8Rng;
///
/// // A CPU-heavy API call: 20 mcore·s compute, 2 MiB working set,
/// // negligible disk, 0.05 MB of network transfer.
/// let class = RequestClass::new(
///     "api",
///     ResourceVec::new(20.0, 2.0, 0.0, 0.05),
///     0.5,
///     SimDuration::from_secs(10),
/// );
/// let mut rng = ChaCha8Rng::seed_from_u64(1);
/// let demand = class.sample_demand(&mut rng);
/// assert!(demand.cpu() > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(from = "RequestClassRepr", into = "RequestClassRepr")]
pub struct RequestClass {
    name: String,
    mean_demand: ResourceVec,
    timeout: SimDuration,
    /// Demand multiplier distribution (mean 1.0), with its log-normal
    /// parameters precomputed once instead of per sampled request.
    multiplier: LogNormal,
}

/// Serialized form: the logical `(name, mean_demand, cv, timeout)` tuple;
/// the precomputed distribution is re-derived on deserialization.
#[derive(Serialize, Deserialize)]
#[serde(rename = "RequestClass")]
struct RequestClassRepr {
    name: String,
    mean_demand: ResourceVec,
    cv: f64,
    timeout: SimDuration,
}

impl From<RequestClassRepr> for RequestClass {
    fn from(r: RequestClassRepr) -> Self {
        RequestClass::new(r.name, r.mean_demand, r.cv, r.timeout)
    }
}

impl From<RequestClass> for RequestClassRepr {
    fn from(c: RequestClass) -> Self {
        RequestClassRepr {
            cv: c.cv(),
            name: c.name,
            mean_demand: c.mean_demand,
            timeout: c.timeout,
        }
    }
}

impl RequestClass {
    /// Creates a request class.
    ///
    /// # Panics
    ///
    /// Panics when `mean_demand` is invalid or all-zero, `cv` is negative,
    /// or `timeout` is zero.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        mean_demand: ResourceVec,
        cv: f64,
        timeout: SimDuration,
    ) -> Self {
        assert!(mean_demand.is_valid(), "mean demand must be valid");
        assert!(!mean_demand.is_zero(), "mean demand must be non-zero");
        assert!(!timeout.is_zero(), "timeout must be positive");
        // LogNormal::new validates cv >= 0.
        RequestClass {
            name: name.into(),
            mean_demand,
            timeout,
            multiplier: LogNormal::new(1.0, cv),
        }
    }

    /// The class name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Mean demand per request.
    #[must_use]
    pub fn mean_demand(&self) -> ResourceVec {
        self.mean_demand
    }

    /// Demand coefficient of variation.
    #[must_use]
    pub fn cv(&self) -> f64 {
        self.multiplier.cv()
    }

    /// Per-request timeout.
    #[must_use]
    pub fn timeout(&self) -> SimDuration {
        self.timeout
    }

    /// Samples one request's demand vector. All rate dimensions share one
    /// log-normal multiplier (a "big" request is big everywhere), keeping
    /// per-dimension ratios stable, which is how real request fan-out
    /// behaves.
    pub fn sample_demand<R: Rng + ?Sized>(&self, rng: &mut R) -> ResourceVec {
        self.sample_demand_with(SamplingMode::Legacy, rng)
    }

    /// [`RequestClass::sample_demand`] with an explicit normal-sampler
    /// mode: `Legacy` keeps the Box–Muller stream bit-for-bit, `Batched`
    /// draws the multiplier's normal from the ziggurat.
    pub fn sample_demand_with<R: Rng + ?Sized>(
        &self,
        mode: SamplingMode,
        rng: &mut R,
    ) -> ResourceVec {
        if self.multiplier.cv() == 0.0 {
            return self.mean_demand;
        }
        let multiplier = self.multiplier.sample_with(mode, rng);
        let mut d = self.mean_demand * multiplier;
        // Working set scales much less than compute with request size.
        d[Resource::Memory] = self.mean_demand[Resource::Memory] * multiplier.sqrt();
        d
    }
}

/// One in-flight request instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Globally unique request id.
    pub id: u64,
    /// The application this request targets.
    pub app: AppId,
    /// Sampled demand for this instance.
    pub demand: ResourceVec,
    /// Arrival time.
    pub arrived: SimTime,
    /// Timeout copied from the class.
    pub timeout: SimDuration,
}

impl Request {
    /// The absolute deadline after which the request counts as timed out.
    #[must_use]
    pub fn deadline(&self) -> SimTime {
        self.arrived + self.timeout
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn class(cv: f64) -> RequestClass {
        RequestClass::new("t", ResourceVec::new(10.0, 4.0, 1.0, 0.5), cv, SimDuration::from_secs(5))
    }

    #[test]
    fn zero_cv_is_deterministic() {
        let c = class(0.0);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert_eq!(c.sample_demand(&mut rng), c.mean_demand());
    }

    #[test]
    fn sampled_mean_tracks_class_mean() {
        let c = class(0.8);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let n = 50_000;
        let total: ResourceVec = (0..n).map(|_| c.sample_demand(&mut rng)).sum();
        let mean = total * (1.0 / f64::from(n));
        assert!((mean.cpu() - 10.0).abs() / 10.0 < 0.05, "cpu mean {}", mean.cpu());
        assert!((mean.disk_io() - 1.0).abs() < 0.05);
    }

    #[test]
    fn demand_ratios_preserved_for_rate_dimensions() {
        let c = class(1.0);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..100 {
            let d = c.sample_demand(&mut rng);
            // cpu:disk ratio stays 10:1.
            assert!((d.cpu() / d.disk_io() - 10.0).abs() < 1e-9);
        }
    }

    #[test]
    fn memory_scales_sublinearly() {
        let c = class(2.0);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        for _ in 0..200 {
            let d = c.sample_demand(&mut rng);
            let cpu_mult = d.cpu() / 10.0;
            let mem_mult = d.memory() / 4.0;
            if cpu_mult > 1.0 {
                assert!(mem_mult <= cpu_mult + 1e-9);
            }
        }
    }

    #[test]
    fn request_deadline() {
        let r = Request {
            id: 1,
            app: AppId::new(0),
            demand: ResourceVec::splat(1.0),
            arrived: SimTime::from_secs(10),
            timeout: SimDuration::from_secs(5),
        };
        assert_eq!(r.deadline(), SimTime::from_secs(15));
    }

    #[test]
    #[should_panic(expected = "demand must be non-zero")]
    fn rejects_zero_demand() {
        let _ = RequestClass::new("z", ResourceVec::ZERO, 0.5, SimDuration::from_secs(1));
    }
}
