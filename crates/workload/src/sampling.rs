//! Distribution sampling helpers.
//!
//! The approved dependency set includes `rand` but not `rand_distr`, so
//! the non-uniform distributions workloads need (exponential inter-arrival
//! gaps, log-normal service demands, Pareto tails) are implemented here
//! from uniform variates.

use rand::Rng;

/// Samples an exponential variate with the given rate (events per unit).
///
/// # Examples
///
/// ```
/// use evolve_workload::sample_exponential;
/// use rand::SeedableRng;
/// use rand_chacha::ChaCha8Rng;
///
/// let mut rng = ChaCha8Rng::seed_from_u64(1);
/// let x = sample_exponential(&mut rng, 2.0);
/// assert!(x >= 0.0);
/// ```
///
/// # Panics
///
/// Panics when `rate` is not positive.
pub fn sample_exponential<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    assert!(rate > 0.0, "exponential rate must be positive");
    // gen::<f64>() ∈ [0, 1); use 1-u ∈ (0, 1] to avoid ln(0).
    let u: f64 = rng.gen();
    -(1.0 - u).ln() / rate
}

/// Samples a log-normal variate parameterized by its **mean** and
/// coefficient of variation (σ/μ of the resulting distribution).
///
/// A CV of 0 returns the mean deterministically.
///
/// # Examples
///
/// ```
/// use evolve_workload::sample_lognormal;
/// use rand::SeedableRng;
/// use rand_chacha::ChaCha8Rng;
///
/// let mut rng = ChaCha8Rng::seed_from_u64(1);
/// let x = sample_lognormal(&mut rng, 10.0, 0.5);
/// assert!(x > 0.0);
/// ```
///
/// # Panics
///
/// Panics when `mean` is not positive or `cv` is negative.
pub fn sample_lognormal<R: Rng + ?Sized>(rng: &mut R, mean: f64, cv: f64) -> f64 {
    LogNormal::new(mean, cv).sample(rng)
}

/// A log-normal distribution with its `(μ, σ)` parameters precomputed
/// from the `(mean, cv)` parameterization.
///
/// [`sample_lognormal`] re-derives `μ = ln(mean) − σ²/2` and
/// `σ = √ln(1+cv²)` on every call; hot paths that draw from one fixed
/// distribution millions of times (per-request demand sampling) build
/// this once. Samples are bit-identical to [`sample_lognormal`] with the
/// same parameters and the same RNG state.
///
/// # Examples
///
/// ```
/// use evolve_workload::{sample_lognormal, LogNormal};
/// use rand::SeedableRng;
/// use rand_chacha::ChaCha8Rng;
///
/// let dist = LogNormal::new(10.0, 0.5);
/// let mut a = ChaCha8Rng::seed_from_u64(1);
/// let mut b = ChaCha8Rng::seed_from_u64(1);
/// assert_eq!(dist.sample(&mut a), sample_lognormal(&mut b, 10.0, 0.5));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mean: f64,
    cv: f64,
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Precomputes the distribution parameters.
    ///
    /// # Panics
    ///
    /// Panics when `mean` is not positive or `cv` is negative.
    #[must_use]
    pub fn new(mean: f64, cv: f64) -> Self {
        assert!(mean > 0.0, "log-normal mean must be positive");
        assert!(cv >= 0.0, "coefficient of variation must be non-negative");
        // For LogNormal(μ, σ): mean = exp(μ + σ²/2), cv² = exp(σ²) - 1.
        let sigma2 = (1.0 + cv * cv).ln();
        LogNormal { mean, cv, mu: mean.ln() - sigma2 / 2.0, sigma: sigma2.sqrt() }
    }

    /// The distribution mean.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The coefficient of variation.
    #[must_use]
    pub fn cv(&self) -> f64 {
        self.cv
    }

    /// Draws one sample; a CV of 0 returns the mean deterministically
    /// without consuming RNG state.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.cv == 0.0 {
            return self.mean;
        }
        let z = sample_standard_normal(rng);
        (self.mu + self.sigma * z).exp()
    }
}

/// Samples a Pareto variate with scale `xm` and shape `alpha` (heavy tail
/// for `alpha` close to 1).
///
/// # Examples
///
/// ```
/// use evolve_workload::sample_pareto;
/// use rand::SeedableRng;
/// use rand_chacha::ChaCha8Rng;
///
/// let mut rng = ChaCha8Rng::seed_from_u64(1);
/// let x = sample_pareto(&mut rng, 1.0, 2.0);
/// assert!(x >= 1.0);
/// ```
///
/// # Panics
///
/// Panics when `xm` or `alpha` is not positive.
pub fn sample_pareto<R: Rng + ?Sized>(rng: &mut R, xm: f64, alpha: f64) -> f64 {
    assert!(xm > 0.0, "pareto scale must be positive");
    assert!(alpha > 0.0, "pareto shape must be positive");
    let u: f64 = rng.gen();
    xm / (1.0 - u).powf(1.0 / alpha)
}

/// Box–Muller standard normal.
fn sample_standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(42)
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let mut r = rng();
        let n = 100_000;
        let rate = 4.0;
        let mean: f64 = (0..n).map(|_| sample_exponential(&mut r, rate)).sum::<f64>() / n as f64;
        assert!((mean - 0.25).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn exponential_is_non_negative() {
        let mut r = rng();
        for _ in 0..1000 {
            assert!(sample_exponential(&mut r, 0.1) >= 0.0);
        }
    }

    #[test]
    fn lognormal_mean_and_cv_match() {
        let mut r = rng();
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| sample_lognormal(&mut r, 50.0, 0.8)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        let cv = var.sqrt() / mean;
        assert!((mean - 50.0).abs() / 50.0 < 0.02, "mean {mean}");
        assert!((cv - 0.8).abs() < 0.05, "cv {cv}");
    }

    #[test]
    fn lognormal_zero_cv_is_deterministic() {
        let mut r = rng();
        assert_eq!(sample_lognormal(&mut r, 7.0, 0.0), 7.0);
    }

    #[test]
    fn lognormal_is_positive() {
        let mut r = rng();
        for _ in 0..1000 {
            assert!(sample_lognormal(&mut r, 1.0, 2.0) > 0.0);
        }
    }

    #[test]
    fn pareto_respects_scale() {
        let mut r = rng();
        for _ in 0..1000 {
            assert!(sample_pareto(&mut r, 3.0, 1.5) >= 3.0);
        }
    }

    #[test]
    fn pareto_mean_for_shape_two() {
        // Mean of Pareto(xm=1, α=2) is α·xm/(α-1) = 2.
        let mut r = rng();
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| sample_pareto(&mut r, 1.0, 2.0)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.15, "mean {mean}");
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        let mut b = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..100 {
            assert_eq!(sample_exponential(&mut a, 1.0), sample_exponential(&mut b, 1.0));
        }
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn exponential_rejects_zero_rate() {
        let mut r = rng();
        let _ = sample_exponential(&mut r, 0.0);
    }
}
