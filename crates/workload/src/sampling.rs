//! Distribution sampling helpers.
//!
//! The approved dependency set includes `rand` but not `rand_distr`, so
//! the non-uniform distributions workloads need (exponential inter-arrival
//! gaps, log-normal service demands, Pareto tails, Poisson window counts)
//! are implemented here from uniform variates.
//!
//! Two standard-normal samplers coexist (see [`SamplingMode`]): the
//! original Box–Muller transform (one `ln`, one `sqrt`, one `cos` per
//! draw) and a 128-layer ziggurat (two uniform draws and one compare on
//! the ~97.5% common path, transcendental fallback only in the wedges and
//! the tail). The ziggurat changes the sampled stream for the same RNG
//! state, so the legacy sampler stays available behind
//! `SamplingMode::Legacy` for one release while downstream fixtures
//! migrate.

use std::sync::OnceLock;

use rand::Rng;

/// Selects between the pre-PR-6 samplers and the batched/ziggurat ones.
///
/// The two modes draw *different streams* from the same RNG state: the
/// headline golden fixture is blessed under `Batched`, while `Legacy`
/// reproduces the pre-ziggurat fixture bit-for-bit. `Legacy` is
/// deprecated and will be removed one release after PR 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub enum SamplingMode {
    /// Box–Muller normals, per-request Lewis–Shedler thinning everywhere.
    Legacy,
    /// Ziggurat normals, windowed Poisson-count arrival generation.
    #[default]
    Batched,
}

/// Samples an exponential variate with the given rate (events per unit).
///
/// # Examples
///
/// ```
/// use evolve_workload::sample_exponential;
/// use rand::SeedableRng;
/// use rand_chacha::ChaCha8Rng;
///
/// let mut rng = ChaCha8Rng::seed_from_u64(1);
/// let x = sample_exponential(&mut rng, 2.0);
/// assert!(x >= 0.0);
/// ```
///
/// # Panics
///
/// Panics when `rate` is not positive.
pub fn sample_exponential<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    assert!(rate > 0.0, "exponential rate must be positive");
    // gen::<f64>() ∈ [0, 1); use 1-u ∈ (0, 1] to avoid ln(0).
    let u: f64 = rng.gen();
    -(1.0 - u).ln() / rate
}

/// Samples a log-normal variate parameterized by its **mean** and
/// coefficient of variation (σ/μ of the resulting distribution).
///
/// A CV of 0 returns the mean deterministically. Uses the legacy
/// Box–Muller normal; hot paths go through [`LogNormal`] with an explicit
/// [`SamplingMode`].
///
/// # Examples
///
/// ```
/// use evolve_workload::sample_lognormal;
/// use rand::SeedableRng;
/// use rand_chacha::ChaCha8Rng;
///
/// let mut rng = ChaCha8Rng::seed_from_u64(1);
/// let x = sample_lognormal(&mut rng, 10.0, 0.5);
/// assert!(x > 0.0);
/// ```
///
/// # Panics
///
/// Panics when `mean` is not positive or `cv` is negative.
pub fn sample_lognormal<R: Rng + ?Sized>(rng: &mut R, mean: f64, cv: f64) -> f64 {
    LogNormal::new(mean, cv).sample(rng)
}

/// Mode-dispatching variant of [`sample_lognormal`] for engine call sites
/// that honor the `legacy_sampling` run flag.
pub fn sample_lognormal_with<R: Rng + ?Sized>(
    mode: SamplingMode,
    rng: &mut R,
    mean: f64,
    cv: f64,
) -> f64 {
    LogNormal::new(mean, cv).sample_with(mode, rng)
}

/// A log-normal distribution with its `(μ, σ)` parameters precomputed
/// from the `(mean, cv)` parameterization.
///
/// [`sample_lognormal`] re-derives `μ = ln(mean) − σ²/2` and
/// `σ = √ln(1+cv²)` on every call; hot paths that draw from one fixed
/// distribution millions of times (per-request demand sampling) build
/// this once. Samples are bit-identical to [`sample_lognormal`] with the
/// same parameters and the same RNG state.
///
/// # Examples
///
/// ```
/// use evolve_workload::{sample_lognormal, LogNormal};
/// use rand::SeedableRng;
/// use rand_chacha::ChaCha8Rng;
///
/// let dist = LogNormal::new(10.0, 0.5);
/// let mut a = ChaCha8Rng::seed_from_u64(1);
/// let mut b = ChaCha8Rng::seed_from_u64(1);
/// assert_eq!(dist.sample(&mut a), sample_lognormal(&mut b, 10.0, 0.5));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mean: f64,
    cv: f64,
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Precomputes the distribution parameters.
    ///
    /// # Panics
    ///
    /// Panics when `mean` is not positive or `cv` is negative.
    #[must_use]
    pub fn new(mean: f64, cv: f64) -> Self {
        assert!(mean > 0.0, "log-normal mean must be positive");
        assert!(cv >= 0.0, "coefficient of variation must be non-negative");
        // For LogNormal(μ, σ): mean = exp(μ + σ²/2), cv² = exp(σ²) - 1.
        let sigma2 = (1.0 + cv * cv).ln();
        LogNormal { mean, cv, mu: mean.ln() - sigma2 / 2.0, sigma: sigma2.sqrt() }
    }

    /// The distribution mean.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The coefficient of variation.
    #[must_use]
    pub fn cv(&self) -> f64 {
        self.cv
    }

    /// Draws one sample with the legacy Box–Muller normal; a CV of 0
    /// returns the mean deterministically without consuming RNG state.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.cv == 0.0 {
            return self.mean;
        }
        let z = sample_standard_normal_box_muller(rng);
        (self.mu + self.sigma * z).exp()
    }

    /// Draws one sample with the normal sampler selected by `mode`.
    pub fn sample_with<R: Rng + ?Sized>(&self, mode: SamplingMode, rng: &mut R) -> f64 {
        if self.cv == 0.0 {
            return self.mean;
        }
        let z = match mode {
            SamplingMode::Legacy => sample_standard_normal_box_muller(rng),
            SamplingMode::Batched => sample_standard_normal(rng),
        };
        (self.mu + self.sigma * z).exp()
    }
}

/// Samples a Pareto variate with scale `xm` and shape `alpha` (heavy tail
/// for `alpha` close to 1).
///
/// # Examples
///
/// ```
/// use evolve_workload::sample_pareto;
/// use rand::SeedableRng;
/// use rand_chacha::ChaCha8Rng;
///
/// let mut rng = ChaCha8Rng::seed_from_u64(1);
/// let x = sample_pareto(&mut rng, 1.0, 2.0);
/// assert!(x >= 1.0);
/// ```
///
/// # Panics
///
/// Panics when `xm` or `alpha` is not positive.
pub fn sample_pareto<R: Rng + ?Sized>(rng: &mut R, xm: f64, alpha: f64) -> f64 {
    assert!(xm > 0.0, "pareto scale must be positive");
    assert!(alpha > 0.0, "pareto shape must be positive");
    let u: f64 = rng.gen();
    xm / (1.0 - u).powf(1.0 / alpha)
}

/// Box–Muller standard normal (legacy sampler; three transcendentals per
/// draw).
fn sample_standard_normal_box_muller<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Number of ziggurat layers.
const ZIG_LAYERS: usize = 128;
/// Right edge of the base layer (Doornik's ZIGNOR constants for 128
/// layers).
const ZIG_R: f64 = 3.442_619_855_899;
/// Area of each layer.
const ZIG_V: f64 = 9.912_563_035_262_17e-3;

struct ZigTables {
    /// Layer edge abscissae `x[0] > x[1] > … > x[LAYERS] = 0`.
    x: [f64; ZIG_LAYERS + 1],
    /// Rectangle-acceptance ratios `x[i+1] / x[i]`.
    ratio: [f64; ZIG_LAYERS],
}

fn zig_tables() -> &'static ZigTables {
    static TABLES: OnceLock<ZigTables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut x = [0.0f64; ZIG_LAYERS + 1];
        let f = (-0.5 * ZIG_R * ZIG_R).exp();
        // Layer 0 is the base strip whose rectangle extends to V/f(R) so
        // that every layer (including the tail mass) has equal area V.
        x[0] = ZIG_V / f;
        x[1] = ZIG_R;
        for i in 2..ZIG_LAYERS {
            let prev = x[i - 1];
            x[i] = (-2.0 * (ZIG_V / prev + (-0.5 * prev * prev).exp()).ln()).sqrt();
        }
        x[ZIG_LAYERS] = 0.0;
        let mut ratio = [0.0f64; ZIG_LAYERS];
        for i in 0..ZIG_LAYERS {
            ratio[i] = x[i + 1] / x[i];
        }
        ZigTables { x, ratio }
    })
}

/// Ziggurat standard normal (Doornik's ZIGNOR layout, 128 layers).
///
/// The common path (~97.5% of draws) costs two uniform draws, one table
/// lookup and one multiply; wedge rejection and the Marsaglia tail
/// (|z| > 3.44) fall back to `exp`/`ln`. Deterministic for a fixed RNG
/// stream, but the stream *differs* from Box–Muller — golden fixtures
/// were re-blessed when this became the default (DESIGN.md decision 11).
///
/// # Examples
///
/// ```
/// use evolve_workload::sample_standard_normal;
/// use rand::SeedableRng;
/// use rand_chacha::ChaCha8Rng;
///
/// let mut rng = ChaCha8Rng::seed_from_u64(1);
/// let z = sample_standard_normal(&mut rng);
/// assert!(z.is_finite());
/// ```
pub fn sample_standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let t = zig_tables();
    loop {
        // One u64 supplies the layer index (7 low bits); the f64 draw
        // supplies sign and position within the layer.
        let layer = (rng.gen::<u64>() & 0x7F) as usize;
        let u: f64 = 2.0 * rng.gen::<f64>() - 1.0;
        if u.abs() < t.ratio[layer] {
            return u * t.x[layer];
        }
        if layer == 0 {
            // Marsaglia tail: sample |z| > R from the conditional tail.
            loop {
                let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
                let u2: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
                let xt = -u1.ln() / ZIG_R;
                let yt = -u2.ln();
                if 2.0 * yt > xt * xt {
                    return if u < 0.0 { -(ZIG_R + xt) } else { ZIG_R + xt };
                }
            }
        }
        // Wedge: accept with probability proportional to the density gap
        // between the layer's rectangle and the curve.
        let z = u * t.x[layer];
        let f0 = (-0.5 * (t.x[layer] * t.x[layer] - z * z)).exp();
        let f1 = (-0.5 * (t.x[layer + 1] * t.x[layer + 1] - z * z)).exp();
        if f1 + rng.gen::<f64>() * (f0 - f1) < 1.0 {
            return z;
        }
    }
}

/// Samples a Poisson count with the given mean.
///
/// Knuth's product-of-uniforms below λ = 10 and Hörmann's PTRS
/// transformed-rejection above it, so one call stays O(1) at the window
/// means the vectorized arrival generator produces (hundreds).
///
/// # Examples
///
/// ```
/// use evolve_workload::sample_poisson_count;
/// use rand::SeedableRng;
/// use rand_chacha::ChaCha8Rng;
///
/// let mut rng = ChaCha8Rng::seed_from_u64(1);
/// let n = sample_poisson_count(&mut rng, 200.0);
/// assert!(n > 100 && n < 300);
/// ```
pub fn sample_poisson_count<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> u64 {
    if lambda.is_nan() || lambda <= 0.0 {
        return 0;
    }
    if lambda < 10.0 {
        // Knuth: count uniforms until their product drops below e^{-λ}.
        let limit = (-lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0f64;
        loop {
            p *= rng.gen::<f64>();
            if p <= limit {
                return k;
            }
            k += 1;
        }
    }
    // PTRS (Hörmann 1993): transformed rejection with squeeze; ~1.1
    // uniform pairs per sample for any λ ≥ 10.
    let b = 0.931 + 2.53 * lambda.sqrt();
    let a = -0.059 + 0.024_83 * b;
    let inv_alpha = 1.1239 + 1.1328 / (b - 3.4);
    let v_r = 0.9277 - 3.6224 / (b - 2.0);
    let ln_lambda = lambda.ln();
    loop {
        let u = rng.gen::<f64>() - 0.5;
        let v: f64 = rng.gen();
        let us = 0.5 - u.abs();
        let k = ((2.0 * a / us + b) * u + lambda + 0.43).floor();
        if us >= 0.07 && v <= v_r {
            return k as u64;
        }
        if k < 0.0 || (us < 0.013 && v > us) {
            continue;
        }
        if (v * inv_alpha / (a / (us * us) + b)).ln() <= k * ln_lambda - lambda - ln_factorial(k) {
            return k as u64;
        }
    }
}

/// `ln(k!)` via a small table for k ≤ 9 and the Stirling series above.
fn ln_factorial(k: f64) -> f64 {
    const TABLE: [f64; 10] = [
        0.0,
        0.0,
        std::f64::consts::LN_2,
        1.791_759_469_228_055,
        3.178_053_830_347_946,
        4.787_491_742_782_046,
        6.579_251_212_010_101,
        8.525_161_361_065_415,
        10.604_602_902_745_25,
        12.801_827_480_081_469,
    ];
    if k < 10.0 {
        return TABLE[k as usize];
    }
    let n = k;
    // Stirling with the 1/(12n) and 1/(360n³) correction terms; relative
    // error < 1e-12 for n ≥ 10, far below the rejection test's tolerance.
    (n + 0.5) * n.ln() - n + 0.5 * (2.0 * std::f64::consts::PI).ln() + 1.0 / (12.0 * n)
        - 1.0 / (360.0 * n * n * n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(42)
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let mut r = rng();
        let n = 100_000;
        let rate = 4.0;
        let mean: f64 = (0..n).map(|_| sample_exponential(&mut r, rate)).sum::<f64>() / n as f64;
        assert!((mean - 0.25).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn exponential_is_non_negative() {
        let mut r = rng();
        for _ in 0..1000 {
            assert!(sample_exponential(&mut r, 0.1) >= 0.0);
        }
    }

    #[test]
    fn lognormal_mean_and_cv_match() {
        let mut r = rng();
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| sample_lognormal(&mut r, 50.0, 0.8)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        let cv = var.sqrt() / mean;
        assert!((mean - 50.0).abs() / 50.0 < 0.02, "mean {mean}");
        assert!((cv - 0.8).abs() < 0.05, "cv {cv}");
    }

    #[test]
    fn lognormal_zero_cv_is_deterministic() {
        let mut r = rng();
        assert_eq!(sample_lognormal(&mut r, 7.0, 0.0), 7.0);
    }

    #[test]
    fn lognormal_is_positive() {
        let mut r = rng();
        for _ in 0..1000 {
            assert!(sample_lognormal(&mut r, 1.0, 2.0) > 0.0);
        }
    }

    #[test]
    fn lognormal_batched_mode_matches_moments() {
        let dist = LogNormal::new(50.0, 0.8);
        let mut r = rng();
        let n = 200_000;
        let samples: Vec<f64> =
            (0..n).map(|_| dist.sample_with(SamplingMode::Batched, &mut r)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        let cv = var.sqrt() / mean;
        assert!((mean - 50.0).abs() / 50.0 < 0.02, "mean {mean}");
        assert!((cv - 0.8).abs() < 0.05, "cv {cv}");
    }

    #[test]
    fn lognormal_legacy_mode_is_bit_identical_to_sample() {
        let dist = LogNormal::new(12.0, 0.6);
        let mut a = rng();
        let mut b = rng();
        for _ in 0..1000 {
            assert_eq!(
                dist.sample(&mut a).to_bits(),
                dist.sample_with(SamplingMode::Legacy, &mut b).to_bits()
            );
        }
    }

    #[test]
    fn pareto_respects_scale() {
        let mut r = rng();
        for _ in 0..1000 {
            assert!(sample_pareto(&mut r, 3.0, 1.5) >= 3.0);
        }
    }

    #[test]
    fn pareto_mean_for_shape_two() {
        // Mean of Pareto(xm=1, α=2) is α·xm/(α-1) = 2.
        let mut r = rng();
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| sample_pareto(&mut r, 1.0, 2.0)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.15, "mean {mean}");
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        let mut b = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..100 {
            assert_eq!(sample_exponential(&mut a, 1.0), sample_exponential(&mut b, 1.0));
        }
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn exponential_rejects_zero_rate() {
        let mut r = rng();
        let _ = sample_exponential(&mut r, 0.0);
    }

    #[test]
    fn ziggurat_moments_match_standard_normal() {
        let mut r = rng();
        let n = 400_000;
        let samples: Vec<f64> = (0..n).map(|_| sample_standard_normal(&mut r)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|z| (z - mean) * (z - mean)).sum::<f64>() / n as f64;
        let skew =
            samples.iter().map(|z| (z - mean).powi(3)).sum::<f64>() / n as f64 / var.powf(1.5);
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.01, "var {var}");
        assert!(skew.abs() < 0.02, "skew {skew}");
    }

    #[test]
    fn ziggurat_tail_mass_is_plausible() {
        // P(|Z| > 3.442) ≈ 5.77e-4, so 400k draws yield ~231 tail hits;
        // also checks the tail fallback produces values beyond R.
        let mut r = rng();
        let n = 400_000;
        let tails = (0..n).filter(|_| sample_standard_normal(&mut r).abs() > ZIG_R).count();
        assert!((100..500).contains(&tails), "tail count {tails}");
    }

    #[test]
    fn ziggurat_deterministic_under_fixed_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(77);
        let mut b = ChaCha8Rng::seed_from_u64(77);
        for _ in 0..10_000 {
            assert_eq!(
                sample_standard_normal(&mut a).to_bits(),
                sample_standard_normal(&mut b).to_bits()
            );
        }
    }

    #[test]
    fn poisson_moments_small_lambda() {
        let mut r = rng();
        let lambda = 3.5;
        let n = 200_000;
        let counts: Vec<u64> = (0..n).map(|_| sample_poisson_count(&mut r, lambda)).collect();
        let mean = counts.iter().sum::<u64>() as f64 / n as f64;
        let var = counts.iter().map(|&k| (k as f64 - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - lambda).abs() / lambda < 0.02, "mean {mean}");
        assert!((var - lambda).abs() / lambda < 0.03, "var {var}");
    }

    #[test]
    fn poisson_moments_large_lambda() {
        let mut r = rng();
        let lambda = 250.0;
        let n = 100_000;
        let counts: Vec<u64> = (0..n).map(|_| sample_poisson_count(&mut r, lambda)).collect();
        let mean = counts.iter().sum::<u64>() as f64 / n as f64;
        let var = counts.iter().map(|&k| (k as f64 - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - lambda).abs() / lambda < 0.01, "mean {mean}");
        assert!((var - lambda).abs() / lambda < 0.03, "var {var}");
    }

    #[test]
    fn poisson_zero_and_negative_lambda_yield_zero() {
        let mut r = rng();
        assert_eq!(sample_poisson_count(&mut r, 0.0), 0);
        assert_eq!(sample_poisson_count(&mut r, -4.0), 0);
        assert_eq!(sample_poisson_count(&mut r, f64::NAN), 0);
    }

    #[test]
    fn ln_factorial_matches_direct_product() {
        let direct: f64 = (1..=25u64).map(|i| (i as f64).ln()).sum();
        assert!((ln_factorial(25.0) - direct).abs() < 1e-9);
        assert!(
            (ln_factorial(9.0) - (1..=9u64).map(|i| (i as f64).ln()).sum::<f64>()).abs() < 1e-9
        );
    }
}
