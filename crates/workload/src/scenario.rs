//! The scenario library: pre-built workload mixes for every experiment.
//!
//! Each experiment in EXPERIMENTS.md references one of these presets, so
//! a benchmark binary and a curious user construct byte-identical
//! workloads. [`LoadSpec`] is the serializable description of a load
//! profile; [`WorkloadMix`] aggregates services and jobs; [`Scenario`]
//! bundles a mix with a name and simulation horizon.

use evolve_types::{PriorityClass, ResourceVec, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::apps::{BatchJobSpec, HpcJobSpec, PloSpec, ServiceSpec, StageSpec};
use crate::arrival::{
    ConstantLoad, DiurnalLoad, FlashCrowdLoad, LoadProfile, MmppLoad, RampLoad, TraceLoad,
};
use crate::request::RequestClass;

/// Serializable description of a load profile, turned into a live
/// [`LoadProfile`] with [`LoadSpec::build`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LoadSpec {
    /// Constant rate.
    Constant {
        /// Requests per second.
        rate: f64,
    },
    /// Sinusoidal day/night pattern.
    Diurnal {
        /// Mean rate.
        base: f64,
        /// Relative amplitude in `[0, 1]`.
        amplitude: f64,
        /// Pattern period.
        period: SimDuration,
        /// Phase offset in radians.
        phase: f64,
    },
    /// Linear ramp.
    Ramp {
        /// Starting rate.
        from: f64,
        /// Final rate.
        to: f64,
        /// Ramp duration.
        duration: SimDuration,
    },
    /// Flash crowd spike.
    FlashCrowd {
        /// Baseline rate.
        base: f64,
        /// Multiplier during the spike.
        spike_factor: f64,
        /// Spike start.
        start: SimTime,
        /// Spike duration.
        duration: SimDuration,
    },
    /// Two-state Markov-modulated (bursty) traffic.
    Mmpp {
        /// Low-state rate.
        low: f64,
        /// High-state rate.
        high: f64,
        /// Mean dwell per state.
        mean_dwell: SimDuration,
    },
    /// Piecewise-constant trace playback.
    Trace {
        /// Time-ordered `(time, rate)` points.
        points: Vec<(SimTime, f64)>,
    },
}

impl LoadSpec {
    /// Instantiates the described profile.
    #[must_use]
    pub fn build(&self) -> Box<dyn LoadProfile> {
        match self {
            LoadSpec::Constant { rate } => Box::new(ConstantLoad::new(*rate)),
            LoadSpec::Diurnal { base, amplitude, period, phase } => {
                Box::new(DiurnalLoad::new(*base, *amplitude, *period).with_phase(*phase))
            }
            LoadSpec::Ramp { from, to, duration } => Box::new(RampLoad::new(*from, *to, *duration)),
            LoadSpec::FlashCrowd { base, spike_factor, start, duration } => {
                Box::new(FlashCrowdLoad::new(*base, *spike_factor, *start, *duration))
            }
            LoadSpec::Mmpp { low, high, mean_dwell } => {
                Box::new(MmppLoad::new(*low, *high, *mean_dwell))
            }
            LoadSpec::Trace { points } => Box::new(TraceLoad::new(points.clone())),
        }
    }

    /// The profile's long-run mean rate (approximate for MMPP/trace),
    /// used for capacity planning in the experiment harness.
    #[must_use]
    pub fn mean_rate(&self) -> f64 {
        match self {
            LoadSpec::Constant { rate } => *rate,
            LoadSpec::Diurnal { base, .. } => *base,
            LoadSpec::Ramp { from, to, .. } => (from + to) / 2.0,
            LoadSpec::FlashCrowd { base, .. } => *base,
            LoadSpec::Mmpp { low, high, .. } => (low + high) / 2.0,
            LoadSpec::Trace { points } => {
                points.iter().map(|(_, r)| *r).sum::<f64>() / points.len().max(1) as f64
            }
        }
    }
}

/// A full workload: services under open-loop traffic plus batch and HPC
/// job submissions.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct WorkloadMix {
    services: Vec<(ServiceSpec, LoadSpec)>,
    batch_jobs: Vec<(BatchJobSpec, SimTime)>,
    hpc_jobs: Vec<(HpcJobSpec, SimTime)>,
}

impl WorkloadMix {
    /// Creates an empty mix.
    #[must_use]
    pub fn new() -> Self {
        WorkloadMix::default()
    }

    /// Adds a microservice with its load profile.
    #[must_use]
    pub fn with_service(mut self, spec: ServiceSpec, load: LoadSpec) -> Self {
        self.services.push((spec, load));
        self
    }

    /// Adds a batch job submitted at `at`.
    #[must_use]
    pub fn with_batch_job(mut self, spec: BatchJobSpec, at: SimTime) -> Self {
        self.batch_jobs.push((spec, at));
        self
    }

    /// Adds an HPC job submitted at `at`.
    #[must_use]
    pub fn with_hpc_job(mut self, spec: HpcJobSpec, at: SimTime) -> Self {
        self.hpc_jobs.push((spec, at));
        self
    }

    /// The services and their load profiles.
    #[must_use]
    pub fn services(&self) -> &[(ServiceSpec, LoadSpec)] {
        &self.services
    }

    /// The batch jobs and their submission times.
    #[must_use]
    pub fn batch_jobs(&self) -> &[(BatchJobSpec, SimTime)] {
        &self.batch_jobs
    }

    /// The HPC jobs and their submission times.
    #[must_use]
    pub fn hpc_jobs(&self) -> &[(HpcJobSpec, SimTime)] {
        &self.hpc_jobs
    }

    /// Total number of workload entities.
    #[must_use]
    pub fn len(&self) -> usize {
        self.services.len() + self.batch_jobs.len() + self.hpc_jobs.len()
    }

    /// `true` when the mix holds nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A named workload mix with its simulation horizon.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Scenario {
    /// Scenario name used in reports.
    pub name: String,
    /// What the scenario exercises.
    pub description: String,
    /// The workload.
    pub mix: WorkloadMix,
    /// How long to simulate.
    pub horizon: SimDuration,
}

/// Canonical request classes used across scenarios. Demand units:
/// mcore·s CPU, MiB working set, MB disk, MB net per request.
fn class_cpu_bound() -> RequestClass {
    RequestClass::new(
        "cpu-bound",
        ResourceVec::new(20.0, 2.0, 0.01, 0.05),
        0.6,
        SimDuration::from_secs(10),
    )
}

fn class_disk_bound() -> RequestClass {
    RequestClass::new(
        "disk-bound",
        ResourceVec::new(5.0, 4.0, 2.0, 0.2),
        0.8,
        SimDuration::from_secs(10),
    )
}

fn class_net_bound() -> RequestClass {
    RequestClass::new(
        "net-bound",
        ResourceVec::new(5.0, 2.0, 0.05, 2.5),
        0.7,
        SimDuration::from_secs(10),
    )
}

/// Compute-heavy requests (~100 ms on one core) used by the overload
/// scenario so a handful of nodes saturates at modest request rates.
fn class_cpu_heavy() -> RequestClass {
    RequestClass::new(
        "cpu-heavy",
        ResourceVec::new(100.0, 8.0, 0.1, 0.2),
        0.5,
        SimDuration::from_secs(10),
    )
}

fn class_mem_heavy() -> RequestClass {
    RequestClass::new(
        "mem-heavy",
        ResourceVec::new(12.0, 48.0, 0.1, 0.1),
        0.5,
        SimDuration::from_secs(10),
    )
}

/// Default initial per-replica allocation: deliberately modest — the
/// controllers must discover the right size.
fn default_alloc() -> ResourceVec {
    ResourceVec::new(1_000.0, 1_024.0, 50.0, 50.0)
}

/// What a cautious user writes into a static pod spec: CPU and memory
/// sized generously (~3× the mean — those are the dimensions dashboards
/// show and Kubernetes lets you request), while disk and network I/O sit
/// at small defaults — stock Kubernetes has no native I/O-bandwidth
/// requests at all, which is precisely the gap EVOLVE's multi-resource
/// controller fills. The result is the classic production profile:
/// over-provisioned where it does not matter, starved where it does.
fn provisioned_alloc() -> ResourceVec {
    ResourceVec::new(6_000.0, 12_288.0, 50.0, 50.0)
}

fn batch_etl(scale: f64) -> BatchJobSpec {
    BatchJobSpec::new(
        "etl",
        vec![
            // Scan/transform: ~30 s of CPU and 20 s of disk per task at
            // the nominal executor size.
            StageSpec::new(
                (8.0 * scale).ceil() as u32,
                ResourceVec::new(60_000.0, 1_024.0, 2_000.0, 200.0),
                1_000_000,
            ),
            // Shuffle/aggregate: network-heavy.
            StageSpec::new(
                (4.0 * scale).ceil() as u32,
                ResourceVec::new(45_000.0, 2_048.0, 500.0, 3_000.0),
                500_000,
            ),
        ],
        PloSpec::Deadline { deadline: SimDuration::from_mins(5) },
        ResourceVec::new(2_000.0, 2_048.0, 100.0, 100.0),
        8,
    )
}

fn batch_analytics(scale: f64) -> BatchJobSpec {
    BatchJobSpec::new(
        "analytics",
        vec![StageSpec::new(
            (12.0 * scale).ceil() as u32,
            ResourceVec::new(120_000.0, 3_072.0, 1_500.0, 500.0),
            2_000_000,
        )],
        PloSpec::Deadline { deadline: SimDuration::from_mins(8) },
        ResourceVec::new(2_000.0, 3_584.0, 80.0, 60.0),
        12,
    )
}

fn hpc_solver(gang: u32) -> HpcJobSpec {
    HpcJobSpec::new(
        "solver",
        gang,
        120,
        // ~2 s of compute and 1 s of halo exchange per iteration at the
        // nominal rank size.
        ResourceVec::new(4_000.0, 1_024.0, 10.0, 100.0),
        ResourceVec::new(2_000.0, 2_048.0, 20.0, 100.0),
        SimDuration::from_mins(10),
    )
}

impl Scenario {
    /// **T1/T2/F4 headline mix** — several latency-critical services with
    /// heterogeneous bottlenecks and dynamic load, plus batch and HPC
    /// jobs competing for the same nodes. `scale` multiplies request
    /// rates and batch widths.
    ///
    /// # Panics
    ///
    /// Panics when `scale` is not positive.
    #[must_use]
    pub fn headline(scale: f64) -> Scenario {
        assert!(scale > 0.0, "scale must be positive");
        let day = SimDuration::from_mins(20);
        let mut mix = WorkloadMix::new();
        let services: [(&str, RequestClass, f64, LoadSpec); 6] = [
            (
                "frontend",
                class_cpu_bound(),
                200.0,
                LoadSpec::Diurnal { base: 200.0 * scale, amplitude: 0.7, period: day, phase: 0.0 },
            ),
            (
                "search",
                class_cpu_bound(),
                80.0,
                LoadSpec::Diurnal { base: 80.0 * scale, amplitude: 0.6, period: day, phase: 1.2 },
            ),
            (
                "ingest",
                class_disk_bound(),
                60.0,
                LoadSpec::Mmpp {
                    low: 25.0 * scale,
                    high: 90.0 * scale,
                    mean_dwell: SimDuration::from_secs(90),
                },
            ),
            (
                "media",
                class_net_bound(),
                70.0,
                LoadSpec::Diurnal { base: 70.0 * scale, amplitude: 0.8, period: day, phase: 2.4 },
            ),
            (
                "session",
                class_mem_heavy(),
                40.0,
                LoadSpec::Mmpp {
                    low: 20.0 * scale,
                    high: 60.0 * scale,
                    mean_dwell: SimDuration::from_secs(120),
                },
            ),
            (
                "checkout",
                class_cpu_bound(),
                30.0,
                LoadSpec::FlashCrowd {
                    base: 30.0 * scale,
                    spike_factor: 4.0,
                    start: SimTime::from_secs(600),
                    duration: SimDuration::from_secs(180),
                },
            ),
        ];
        for (name, class, _nominal, load) in services {
            mix = mix.with_service(
                ServiceSpec::new(
                    name,
                    PloSpec::LatencyP99 { target_ms: 100.0 },
                    class,
                    // The static baseline keeps these generous requests
                    // for the whole run; EVOLVE right-sizes from them.
                    provisioned_alloc(),
                )
                .with_initial_replicas(2),
                load,
            );
        }
        mix = mix
            .with_batch_job(batch_etl(scale), SimTime::from_secs(120))
            .with_batch_job(batch_analytics(scale), SimTime::from_secs(400))
            .with_batch_job(batch_etl(scale), SimTime::from_secs(800))
            .with_hpc_job(hpc_solver(4), SimTime::from_secs(200))
            .with_hpc_job(hpc_solver(6), SimTime::from_secs(700));
        Scenario {
            name: "headline".into(),
            description: "mixed cloud/big-data/HPC consolidation (T1/T2/F4)".into(),
            mix,
            horizon: SimDuration::from_mins(20),
        }
    }

    /// **F1 timeline** — a single CPU-bound service under one compressed
    /// diurnal day.
    #[must_use]
    pub fn single_diurnal() -> Scenario {
        let mix = WorkloadMix::new().with_service(
            ServiceSpec::new(
                "web",
                PloSpec::LatencyP99 { target_ms: 100.0 },
                class_cpu_bound(),
                default_alloc(),
            )
            .with_initial_replicas(2),
            LoadSpec::Diurnal {
                base: 150.0,
                amplitude: 0.8,
                period: SimDuration::from_mins(15),
                phase: 0.0,
            },
        );
        Scenario {
            name: "single-diurnal".into(),
            description: "one service, one compressed day (F1)".into(),
            mix,
            horizon: SimDuration::from_mins(15),
        }
    }

    /// **F5 flash crowd** — a steady service hit by a `spike_factor`×
    /// burst two minutes in.
    ///
    /// # Panics
    ///
    /// Panics when `spike_factor < 1`.
    #[must_use]
    pub fn flash_crowd(spike_factor: f64) -> Scenario {
        let mix = WorkloadMix::new().with_service(
            ServiceSpec::new(
                "store",
                PloSpec::LatencyP99 { target_ms: 100.0 },
                class_cpu_bound(),
                default_alloc(),
            )
            .with_initial_replicas(2),
            LoadSpec::FlashCrowd {
                base: 80.0,
                spike_factor,
                start: SimTime::from_secs(120),
                duration: SimDuration::from_secs(150),
            },
        );
        Scenario {
            name: format!("flash-crowd-x{spike_factor:.0}"),
            description: "steady load with a sudden spike (F5)".into(),
            mix,
            horizon: SimDuration::from_mins(8),
        }
    }

    /// **F2 step response** — load steps from `base` to `base×factor`
    /// halfway through; used to measure settling time and overshoot.
    ///
    /// # Panics
    ///
    /// Panics when `factor < 1`.
    #[must_use]
    pub fn step_response(factor: f64) -> Scenario {
        assert!(factor >= 1.0, "step factor must be at least 1");
        let base = 60.0;
        let mix = WorkloadMix::new().with_service(
            ServiceSpec::new(
                "svc",
                PloSpec::LatencyP99 { target_ms: 100.0 },
                class_cpu_bound(),
                default_alloc(),
            )
            .with_initial_replicas(2),
            LoadSpec::Trace {
                points: vec![(SimTime::ZERO, base), (SimTime::from_secs(240), base * factor)],
            },
        );
        Scenario {
            name: format!("step-x{factor:.0}"),
            description: "load step for settling-time measurement (F2)".into(),
            mix,
            horizon: SimDuration::from_mins(10),
        }
    }

    /// **F3 load sweep** — two services at a constant `offered` fraction
    /// of nominal capacity (1.0 ≈ the allocation ceiling of the default
    /// config).
    ///
    /// # Panics
    ///
    /// Panics when `offered` is not positive.
    #[must_use]
    pub fn load_sweep(offered: f64) -> Scenario {
        assert!(offered > 0.0, "offered load must be positive");
        let mix = WorkloadMix::new()
            .with_service(
                ServiceSpec::new(
                    "api",
                    PloSpec::LatencyP99 { target_ms: 100.0 },
                    class_cpu_bound(),
                    default_alloc(),
                )
                .with_initial_replicas(2),
                LoadSpec::Constant { rate: 200.0 * offered },
            )
            .with_service(
                ServiceSpec::new(
                    "feed",
                    PloSpec::LatencyP99 { target_ms: 120.0 },
                    class_disk_bound(),
                    default_alloc(),
                )
                .with_initial_replicas(2),
                LoadSpec::Constant { rate: 100.0 * offered },
            );
        Scenario {
            name: format!("sweep-{offered:.2}"),
            description: "constant offered load for the violation-vs-load sweep (F3)".into(),
            mix,
            horizon: SimDuration::from_mins(6),
        }
    }

    /// **T5 bottleneck rotation** — four services, each binding on a
    /// different resource dimension, under bursty load; the multi-resource
    /// vs CPU-only ablation runs here.
    #[must_use]
    pub fn bottleneck_rotation() -> Scenario {
        let mut mix = WorkloadMix::new();
        let entries: [(&str, RequestClass); 4] = [
            ("cpu-svc", class_cpu_bound()),
            ("disk-svc", class_disk_bound()),
            ("net-svc", class_net_bound()),
            ("mem-svc", class_mem_heavy()),
        ];
        for (name, class) in entries {
            mix = mix.with_service(
                ServiceSpec::new(
                    name,
                    PloSpec::LatencyP99 { target_ms: 120.0 },
                    class,
                    default_alloc(),
                )
                .with_initial_replicas(2),
                LoadSpec::Mmpp { low: 30.0, high: 80.0, mean_dwell: SimDuration::from_secs(60) },
            );
        }
        Scenario {
            name: "bottleneck-rotation".into(),
            description: "each service binds on a different resource (T5)".into(),
            mix,
            horizon: SimDuration::from_mins(10),
        }
    }

    /// **Overload / graceful degradation** — three priority tiers of
    /// services plus batch jobs, built from compute-heavy requests so a
    /// small reference cluster (≈4 default nodes) saturates at modest
    /// request rates. Service rates sum to `440 × offered` rps, ≈36 k
    /// mcore of steady CPU demand at `offered = 1.0` against ~57 k mcore
    /// of usable capacity: `1.0` leaves room for controllers to settle,
    /// ≈1.5 sits at the knee, and values above it push steady demand past
    /// schedulable capacity — the regime the cluster capacity arbiter
    /// exists for.
    ///
    /// # Panics
    ///
    /// Panics when `offered` is not positive.
    #[must_use]
    pub fn overload(offered: f64) -> Scenario {
        assert!(offered > 0.0, "offered load must be positive");
        let mix = WorkloadMix::new()
            .with_service(
                ServiceSpec::new(
                    "checkout",
                    PloSpec::LatencyP99 { target_ms: 150.0 },
                    class_cpu_heavy(),
                    default_alloc(),
                )
                .with_initial_replicas(2)
                .with_priority(PriorityClass::Critical),
                LoadSpec::Constant { rate: 120.0 * offered },
            )
            .with_service(
                ServiceSpec::new(
                    "api",
                    PloSpec::LatencyP99 { target_ms: 150.0 },
                    class_cpu_heavy(),
                    default_alloc(),
                )
                .with_initial_replicas(2),
                LoadSpec::Constant { rate: 120.0 * offered },
            )
            .with_service(
                ServiceSpec::new(
                    "feed",
                    PloSpec::LatencyP99 { target_ms: 150.0 },
                    class_disk_bound(),
                    default_alloc(),
                )
                .with_initial_replicas(2),
                LoadSpec::Constant { rate: 80.0 * offered },
            )
            .with_service(
                ServiceSpec::new(
                    "scavenge",
                    PloSpec::LatencyP99 { target_ms: 300.0 },
                    class_cpu_heavy(),
                    default_alloc(),
                )
                .with_initial_replicas(2)
                .with_priority(PriorityClass::Preemptible),
                LoadSpec::Constant { rate: 120.0 * offered },
            )
            .with_batch_job(
                batch_analytics(1.0).with_priority(PriorityClass::Preemptible),
                SimTime::from_secs(60),
            )
            .with_batch_job(batch_etl(1.0), SimTime::from_secs(120));
        Scenario {
            name: format!("overload-{offered:.2}"),
            description: "priority-tiered services pushing demand past capacity".into(),
            mix,
            horizon: SimDuration::from_mins(8),
        }
    }

    /// **T8 cluster scale** — the scheduler-stress regime: static-sized
    /// pods packing every node to its slot capacity, with an
    /// oversubscribed batch backlog keeping a persistent pending queue
    /// and steady completion churn.
    ///
    /// Sized against the default node shape: each pod requests
    /// (1200 mcore, 4800 MiB, 30, 80), so exactly 12 fit per default
    /// node (CPU- and memory-bound simultaneously) and the cluster
    /// offers `12 × nodes` pod slots. Services take ~40% of the slots
    /// spread over `apps` distinct applications (priority 100); four
    /// batch jobs (priority 10) offer `8 × nodes` parallel tasks against
    /// the remaining ~7.2 × nodes slots, so the pending queue never
    /// drains and every control tick reschedules into a nearly-full
    /// cluster — the worst case for a full node rescan and the regime
    /// `tab8_cluster_scale` measures. Batch tasks carry ~5 min of CPU
    /// work each, so a 5 s tick completes ~2% of the running tasks:
    /// free slots concentrate on a small fraction of the nodes while
    /// the backlog keeps probing a cluster that is full everywhere else.
    ///
    /// Intended for `KubeStatic`-style static replica management:
    /// replica counts are chosen here, not by a controller.
    ///
    /// # Panics
    ///
    /// Panics when `nodes` or `apps` is zero.
    #[must_use]
    pub fn cluster_scale(nodes: usize, apps: usize, horizon: SimDuration) -> Scenario {
        assert!(nodes > 0, "need at least one node");
        assert!(apps > 0, "need at least one service app");
        let slots = 12 * nodes;
        let service_pods = (slots * 2).div_ceil(5); // ~40% of slots
        let per_app = service_pods.div_ceil(apps).max(1) as u32;
        let pod_alloc = ResourceVec::new(1_200.0, 4_800.0, 30.0, 80.0);
        let mut mix = WorkloadMix::new();
        for i in 0..apps {
            mix = mix.with_service(
                ServiceSpec::new(
                    format!("svc-{i}"),
                    PloSpec::LatencyP99 { target_ms: 250.0 },
                    class_cpu_bound(),
                    pod_alloc,
                )
                .with_initial_replicas(per_app),
                LoadSpec::Constant { rate: 2.0 },
            );
        }
        // Four staggered batch jobs; together they offer 8 × nodes
        // parallel tasks — more than the ~7.2 × nodes free slots — so a
        // pending backlog persists for the whole horizon. 360 000 mcore·s
        // of CPU per task at the 1 200 mcore allocation means ~5 min per
        // task: each tick frees a trickle of slots on scattered nodes
        // while the rest of the cluster stays packed.
        let tasks_per_stage = (nodes * 50).max(1) as u32;
        let max_parallel = (nodes * 2).max(1) as u32;
        for j in 0..4 {
            mix = mix.with_batch_job(
                BatchJobSpec::new(
                    format!("scan-{j}"),
                    vec![StageSpec::new(
                        tasks_per_stage,
                        ResourceVec::new(360_000.0, 2_048.0, 100.0, 50.0),
                        100_000,
                    )],
                    PloSpec::Deadline { deadline: SimDuration::from_mins(60) },
                    pod_alloc,
                    max_parallel,
                )
                .with_priority(PriorityClass::Preemptible),
                SimTime::from_secs(10 + 5 * j),
            );
        }
        Scenario {
            name: format!("cluster-scale-{nodes}n-{apps}a"),
            description: "slot-packed nodes with an oversubscribed batch backlog (T8)".into(),
            mix,
            horizon,
        }
    }

    /// **F6 interference** — two latency-critical services colocated with
    /// aggressive batch and HPC work that should harvest only slack.
    #[must_use]
    pub fn interference() -> Scenario {
        let mix = WorkloadMix::new()
            .with_service(
                ServiceSpec::new(
                    "frontend",
                    PloSpec::LatencyP99 { target_ms: 100.0 },
                    class_cpu_bound(),
                    default_alloc(),
                )
                .with_initial_replicas(2),
                LoadSpec::Diurnal {
                    base: 100.0,
                    amplitude: 0.7,
                    period: SimDuration::from_mins(10),
                    phase: 0.0,
                },
            )
            .with_service(
                ServiceSpec::new(
                    "api",
                    PloSpec::LatencyP99 { target_ms: 100.0 },
                    class_net_bound(),
                    default_alloc(),
                )
                .with_initial_replicas(2),
                LoadSpec::Mmpp { low: 40.0, high: 100.0, mean_dwell: SimDuration::from_secs(75) },
            )
            .with_batch_job(batch_analytics(2.0), SimTime::from_secs(60))
            .with_batch_job(batch_etl(2.0), SimTime::from_secs(90))
            .with_hpc_job(hpc_solver(8), SimTime::from_secs(120));
        Scenario {
            name: "interference".into(),
            description: "batch/HPC harvesting slack under latency PLOs (F6)".into(),
            mix,
            horizon: SimDuration::from_mins(12),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_specs_build() {
        let specs = [
            LoadSpec::Constant { rate: 5.0 },
            LoadSpec::Diurnal {
                base: 10.0,
                amplitude: 0.5,
                period: SimDuration::from_secs(60),
                phase: 0.0,
            },
            LoadSpec::Ramp { from: 1.0, to: 2.0, duration: SimDuration::from_secs(10) },
            LoadSpec::FlashCrowd {
                base: 1.0,
                spike_factor: 3.0,
                start: SimTime::from_secs(5),
                duration: SimDuration::from_secs(5),
            },
            LoadSpec::Mmpp { low: 1.0, high: 5.0, mean_dwell: SimDuration::from_secs(10) },
            LoadSpec::Trace { points: vec![(SimTime::ZERO, 4.0)] },
        ];
        for spec in specs {
            let profile = spec.build();
            assert!(profile.max_rate() >= spec.mean_rate() * 0.99, "{spec:?}");
        }
    }

    #[test]
    fn mix_builder_accumulates() {
        let s = Scenario::headline(1.0);
        assert_eq!(s.mix.services().len(), 6);
        assert_eq!(s.mix.batch_jobs().len(), 3);
        assert_eq!(s.mix.hpc_jobs().len(), 2);
        assert_eq!(s.mix.len(), 11);
        assert!(!s.mix.is_empty());
    }

    #[test]
    fn headline_scale_multiplies_rates() {
        let a = Scenario::headline(1.0);
        let b = Scenario::headline(2.0);
        let rate = |s: &Scenario| s.mix.services()[0].1.mean_rate();
        assert!((rate(&b) / rate(&a) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn every_preset_is_nonempty_and_named() {
        let presets = [
            Scenario::headline(1.0),
            Scenario::single_diurnal(),
            Scenario::flash_crowd(5.0),
            Scenario::step_response(4.0),
            Scenario::load_sweep(0.8),
            Scenario::bottleneck_rotation(),
            Scenario::interference(),
            Scenario::overload(1.5),
            Scenario::cluster_scale(100, 10, SimDuration::from_mins(2)),
        ];
        for s in presets {
            assert!(!s.mix.is_empty(), "{} empty", s.name);
            assert!(!s.name.is_empty());
            assert!(!s.horizon.is_zero());
        }
    }

    #[test]
    fn bottleneck_rotation_uses_distinct_dominant_resources() {
        let s = Scenario::bottleneck_rotation();
        let mut dominants = std::collections::HashSet::new();
        for (svc, _) in s.mix.services() {
            let d = svc.request_class.mean_demand();
            // Normalize against a reference node shape to find the binding
            // dimension of each class.
            let node = ResourceVec::new(16_000.0, 65_536.0, 500.0, 1_250.0);
            let (dom, _) = d.dominant(&node);
            dominants.insert(dom);
        }
        assert!(dominants.len() >= 3, "expected diverse bottlenecks: {dominants:?}");
    }

    #[test]
    #[should_panic(expected = "scale must be positive")]
    fn headline_rejects_zero_scale() {
        let _ = Scenario::headline(0.0);
    }

    #[test]
    fn overload_mixes_priority_tiers() {
        let s = Scenario::overload(1.5);
        let classes: Vec<PriorityClass> =
            s.mix.services().iter().map(|(svc, _)| svc.priority).collect();
        assert!(classes.contains(&PriorityClass::Critical));
        assert!(classes.contains(&PriorityClass::Standard));
        assert!(classes.contains(&PriorityClass::Preemptible));
        assert_eq!(s.mix.batch_jobs()[0].0.priority, PriorityClass::Preemptible);
        // Offered load scales linearly with the knob.
        let a = Scenario::overload(1.0);
        let rate = |s: &Scenario| s.mix.services()[0].1.mean_rate();
        assert!((rate(&s) / rate(&a) - 1.5).abs() < 1e-9);
    }
}
