//! The scenario library: pre-built workload mixes for every experiment.
//!
//! Each experiment in EXPERIMENTS.md references one of these presets, so
//! a benchmark binary and a curious user construct byte-identical
//! workloads. [`LoadSpec`] is the serializable description of a load
//! profile; [`WorkloadMix`] aggregates services and jobs; [`Scenario`]
//! bundles a mix with a name and simulation horizon.
//!
//! The presets themselves are defined as declarative
//! [`ScenarioSpec`](crate::ScenarioSpec)s (one checked-in
//! `scenarios/*.toml` file per preset, pinned byte-identical by parity
//! tests); the constructors here are thin emitters kept for API
//! compatibility and programmatic use.

use evolve_types::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::apps::{BatchJobSpec, HpcJobSpec, ServiceSpec};
use crate::arrival::{
    ConstantLoad, DiurnalLoad, FlashCrowdLoad, LoadProfile, MmppLoad, RampLoad, TraceLoad,
};
use crate::spec::ScenarioSpec;

/// Serializable description of a load profile, turned into a live
/// [`LoadProfile`] with [`LoadSpec::build`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LoadSpec {
    /// Constant rate.
    Constant {
        /// Requests per second.
        rate: f64,
    },
    /// Sinusoidal day/night pattern.
    Diurnal {
        /// Mean rate.
        base: f64,
        /// Relative amplitude in `[0, 1]`.
        amplitude: f64,
        /// Pattern period.
        period: SimDuration,
        /// Phase offset in radians.
        phase: f64,
    },
    /// Linear ramp.
    Ramp {
        /// Starting rate.
        from: f64,
        /// Final rate.
        to: f64,
        /// Ramp duration.
        duration: SimDuration,
    },
    /// Flash crowd spike.
    FlashCrowd {
        /// Baseline rate.
        base: f64,
        /// Multiplier during the spike.
        spike_factor: f64,
        /// Spike start.
        start: SimTime,
        /// Spike duration.
        duration: SimDuration,
    },
    /// Two-state Markov-modulated (bursty) traffic.
    Mmpp {
        /// Low-state rate.
        low: f64,
        /// High-state rate.
        high: f64,
        /// Mean dwell per state.
        mean_dwell: SimDuration,
    },
    /// Piecewise-constant trace playback.
    Trace {
        /// Time-ordered `(time, rate)` points.
        points: Vec<(SimTime, f64)>,
    },
}

impl LoadSpec {
    /// Instantiates the described profile.
    #[must_use]
    pub fn build(&self) -> Box<dyn LoadProfile> {
        match self {
            LoadSpec::Constant { rate } => Box::new(ConstantLoad::new(*rate)),
            LoadSpec::Diurnal { base, amplitude, period, phase } => {
                Box::new(DiurnalLoad::new(*base, *amplitude, *period).with_phase(*phase))
            }
            LoadSpec::Ramp { from, to, duration } => Box::new(RampLoad::new(*from, *to, *duration)),
            LoadSpec::FlashCrowd { base, spike_factor, start, duration } => {
                Box::new(FlashCrowdLoad::new(*base, *spike_factor, *start, *duration))
            }
            LoadSpec::Mmpp { low, high, mean_dwell } => {
                Box::new(MmppLoad::new(*low, *high, *mean_dwell))
            }
            LoadSpec::Trace { points } => Box::new(TraceLoad::new(points.clone())),
        }
    }

    /// The profile's long-run mean rate (approximate for MMPP/trace),
    /// used for capacity planning in the experiment harness.
    #[must_use]
    pub fn mean_rate(&self) -> f64 {
        match self {
            LoadSpec::Constant { rate } => *rate,
            LoadSpec::Diurnal { base, .. } => *base,
            LoadSpec::Ramp { from, to, .. } => (from + to) / 2.0,
            LoadSpec::FlashCrowd { base, .. } => *base,
            LoadSpec::Mmpp { low, high, .. } => (low + high) / 2.0,
            LoadSpec::Trace { points } => {
                points.iter().map(|(_, r)| *r).sum::<f64>() / points.len().max(1) as f64
            }
        }
    }

    /// A copy with every rate multiplied by `factor` (timings
    /// unchanged) — the capacity-probe ramp step.
    #[must_use]
    pub fn scaled(&self, factor: f64) -> LoadSpec {
        match self {
            LoadSpec::Constant { rate } => LoadSpec::Constant { rate: rate * factor },
            LoadSpec::Diurnal { base, amplitude, period, phase } => LoadSpec::Diurnal {
                base: base * factor,
                amplitude: *amplitude,
                period: *period,
                phase: *phase,
            },
            LoadSpec::Ramp { from, to, duration } => {
                LoadSpec::Ramp { from: from * factor, to: to * factor, duration: *duration }
            }
            LoadSpec::FlashCrowd { base, spike_factor, start, duration } => LoadSpec::FlashCrowd {
                base: base * factor,
                spike_factor: *spike_factor,
                start: *start,
                duration: *duration,
            },
            LoadSpec::Mmpp { low, high, mean_dwell } => {
                LoadSpec::Mmpp { low: low * factor, high: high * factor, mean_dwell: *mean_dwell }
            }
            LoadSpec::Trace { points } => {
                LoadSpec::Trace { points: points.iter().map(|(t, r)| (*t, r * factor)).collect() }
            }
        }
    }
}

/// A full workload: services under open-loop traffic plus batch and HPC
/// job submissions.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct WorkloadMix {
    services: Vec<(ServiceSpec, LoadSpec)>,
    batch_jobs: Vec<(BatchJobSpec, SimTime)>,
    hpc_jobs: Vec<(HpcJobSpec, SimTime)>,
}

impl WorkloadMix {
    /// Creates an empty mix.
    #[must_use]
    pub fn new() -> Self {
        WorkloadMix::default()
    }

    /// Adds a microservice with its load profile.
    #[must_use]
    pub fn with_service(mut self, spec: ServiceSpec, load: LoadSpec) -> Self {
        self.services.push((spec, load));
        self
    }

    /// Adds a batch job submitted at `at`.
    #[must_use]
    pub fn with_batch_job(mut self, spec: BatchJobSpec, at: SimTime) -> Self {
        self.batch_jobs.push((spec, at));
        self
    }

    /// Adds an HPC job submitted at `at`.
    #[must_use]
    pub fn with_hpc_job(mut self, spec: HpcJobSpec, at: SimTime) -> Self {
        self.hpc_jobs.push((spec, at));
        self
    }

    /// The services and their load profiles.
    #[must_use]
    pub fn services(&self) -> &[(ServiceSpec, LoadSpec)] {
        &self.services
    }

    /// The batch jobs and their submission times.
    #[must_use]
    pub fn batch_jobs(&self) -> &[(BatchJobSpec, SimTime)] {
        &self.batch_jobs
    }

    /// The HPC jobs and their submission times.
    #[must_use]
    pub fn hpc_jobs(&self) -> &[(HpcJobSpec, SimTime)] {
        &self.hpc_jobs
    }

    /// Total number of workload entities.
    #[must_use]
    pub fn len(&self) -> usize {
        self.services.len() + self.batch_jobs.len() + self.hpc_jobs.len()
    }

    /// `true` when the mix holds nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A named workload mix with its simulation horizon.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Scenario {
    /// Scenario name used in reports.
    pub name: String,
    /// What the scenario exercises.
    pub description: String,
    /// The workload.
    pub mix: WorkloadMix,
    /// How long to simulate.
    pub horizon: SimDuration,
}

impl Scenario {
    /// **T1/T2/F4 headline mix** — several latency-critical services with
    /// heterogeneous bottlenecks and dynamic load, plus batch and HPC
    /// jobs competing for the same nodes. `scale` multiplies request
    /// rates and batch widths.
    ///
    /// # Panics
    ///
    /// Panics when `scale` is not positive.
    #[must_use]
    pub fn headline(scale: f64) -> Scenario {
        ScenarioSpec::headline(scale).build()
    }

    /// **F1 timeline** — a single CPU-bound service under one compressed
    /// diurnal day.
    #[must_use]
    pub fn single_diurnal() -> Scenario {
        ScenarioSpec::single_diurnal().build()
    }

    /// **F5 flash crowd** — a steady service hit by a `spike_factor`×
    /// burst two minutes in.
    ///
    /// # Panics
    ///
    /// Panics when `spike_factor < 1`.
    #[must_use]
    pub fn flash_crowd(spike_factor: f64) -> Scenario {
        ScenarioSpec::flash_crowd(spike_factor).build()
    }

    /// **F2 step response** — load steps from `base` to `base×factor`
    /// halfway through; used to measure settling time and overshoot.
    ///
    /// # Panics
    ///
    /// Panics when `factor < 1`.
    #[must_use]
    pub fn step_response(factor: f64) -> Scenario {
        ScenarioSpec::step_response(factor).build()
    }

    /// **F3 load sweep** — two services at a constant `offered` fraction
    /// of nominal capacity (1.0 ≈ the allocation ceiling of the default
    /// config).
    ///
    /// # Panics
    ///
    /// Panics when `offered` is not positive.
    #[must_use]
    pub fn load_sweep(offered: f64) -> Scenario {
        ScenarioSpec::load_sweep(offered).build()
    }

    /// **T5 bottleneck rotation** — four services, each binding on a
    /// different resource dimension, under bursty load; the multi-resource
    /// vs CPU-only ablation runs here.
    #[must_use]
    pub fn bottleneck_rotation() -> Scenario {
        ScenarioSpec::bottleneck_rotation().build()
    }

    /// **Overload / graceful degradation** — three priority tiers of
    /// services plus batch jobs, built from compute-heavy requests so a
    /// small reference cluster (≈4 default nodes) saturates at modest
    /// request rates. Service rates sum to `440 × offered` rps, ≈36 k
    /// mcore of steady CPU demand at `offered = 1.0` against ~57 k mcore
    /// of usable capacity: `1.0` leaves room for controllers to settle,
    /// ≈1.5 sits at the knee, and values above it push steady demand past
    /// schedulable capacity — the regime the cluster capacity arbiter
    /// exists for.
    ///
    /// # Panics
    ///
    /// Panics when `offered` is not positive.
    #[must_use]
    pub fn overload(offered: f64) -> Scenario {
        ScenarioSpec::overload(offered).build()
    }

    /// **T8 cluster scale** — the scheduler-stress regime: static-sized
    /// pods packing every node to its slot capacity, with an
    /// oversubscribed batch backlog keeping a persistent pending queue
    /// and steady completion churn.
    ///
    /// Sized against the default node shape: each pod requests
    /// (1200 mcore, 4800 MiB, 30, 80), so exactly 12 fit per default
    /// node (CPU- and memory-bound simultaneously) and the cluster
    /// offers `12 × nodes` pod slots. Services take ~40% of the slots
    /// spread over `apps` distinct applications; four batch jobs offer
    /// `8 × nodes` parallel tasks against the remaining ~7.2 × nodes
    /// slots, so the pending queue never drains and every control tick
    /// reschedules into a nearly-full cluster — the worst case for a
    /// full node rescan and the regime `tab8_cluster_scale` measures.
    /// Batch tasks carry ~5 min of CPU work each, so a 5 s tick
    /// completes ~2% of the running tasks: free slots concentrate on a
    /// small fraction of the nodes while the backlog keeps probing a
    /// cluster that is full everywhere else.
    ///
    /// Intended for `KubeStatic`-style static replica management:
    /// replica counts are chosen here, not by a controller.
    ///
    /// # Panics
    ///
    /// Panics when `nodes` or `apps` is zero.
    #[must_use]
    pub fn cluster_scale(nodes: usize, apps: usize, horizon: SimDuration) -> Scenario {
        ScenarioSpec::cluster_scale(nodes, apps, horizon).build()
    }

    /// **F6 interference** — two latency-critical services colocated with
    /// aggressive batch and HPC work that should harvest only slack.
    #[must_use]
    pub fn interference() -> Scenario {
        ScenarioSpec::interference().build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evolve_types::{PriorityClass, ResourceVec};

    #[test]
    fn load_specs_build() {
        let specs = [
            LoadSpec::Constant { rate: 5.0 },
            LoadSpec::Diurnal {
                base: 10.0,
                amplitude: 0.5,
                period: SimDuration::from_secs(60),
                phase: 0.0,
            },
            LoadSpec::Ramp { from: 1.0, to: 2.0, duration: SimDuration::from_secs(10) },
            LoadSpec::FlashCrowd {
                base: 1.0,
                spike_factor: 3.0,
                start: SimTime::from_secs(5),
                duration: SimDuration::from_secs(5),
            },
            LoadSpec::Mmpp { low: 1.0, high: 5.0, mean_dwell: SimDuration::from_secs(10) },
            LoadSpec::Trace { points: vec![(SimTime::ZERO, 4.0)] },
        ];
        for spec in specs {
            let profile = spec.build();
            assert!(profile.max_rate() >= spec.mean_rate() * 0.99, "{spec:?}");
            // Scaling doubles the mean rate for every kind.
            let scaled = spec.scaled(2.0);
            assert!((scaled.mean_rate() - 2.0 * spec.mean_rate()).abs() < 1e-9, "{spec:?}");
        }
    }

    #[test]
    fn mix_builder_accumulates() {
        let s = Scenario::headline(1.0);
        assert_eq!(s.mix.services().len(), 6);
        assert_eq!(s.mix.batch_jobs().len(), 3);
        assert_eq!(s.mix.hpc_jobs().len(), 2);
        assert_eq!(s.mix.len(), 11);
        assert!(!s.mix.is_empty());
    }

    #[test]
    fn headline_scale_multiplies_rates() {
        let a = Scenario::headline(1.0);
        let b = Scenario::headline(2.0);
        let rate = |s: &Scenario| s.mix.services()[0].1.mean_rate();
        assert!((rate(&b) / rate(&a) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn every_preset_is_nonempty_and_named() {
        let presets = [
            Scenario::headline(1.0),
            Scenario::single_diurnal(),
            Scenario::flash_crowd(5.0),
            Scenario::step_response(4.0),
            Scenario::load_sweep(0.8),
            Scenario::bottleneck_rotation(),
            Scenario::interference(),
            Scenario::overload(1.5),
            Scenario::cluster_scale(100, 10, SimDuration::from_mins(2)),
        ];
        for s in presets {
            assert!(!s.mix.is_empty(), "{} empty", s.name);
            assert!(!s.name.is_empty());
            assert!(!s.horizon.is_zero());
        }
    }

    #[test]
    fn bottleneck_rotation_uses_distinct_dominant_resources() {
        let s = Scenario::bottleneck_rotation();
        let mut dominants = std::collections::HashSet::new();
        for (svc, _) in s.mix.services() {
            let d = svc.request_class.mean_demand();
            // Normalize against a reference node shape to find the binding
            // dimension of each class.
            let node = ResourceVec::new(16_000.0, 65_536.0, 500.0, 1_250.0);
            let (dom, _) = d.dominant(&node);
            dominants.insert(dom);
        }
        assert!(dominants.len() >= 3, "expected diverse bottlenecks: {dominants:?}");
    }

    #[test]
    #[should_panic(expected = "scale must be positive")]
    fn headline_rejects_zero_scale() {
        let _ = Scenario::headline(0.0);
    }

    #[test]
    fn overload_mixes_priority_tiers() {
        let s = Scenario::overload(1.5);
        let classes: Vec<PriorityClass> =
            s.mix.services().iter().map(|(svc, _)| svc.priority).collect();
        assert!(classes.contains(&PriorityClass::Critical));
        assert!(classes.contains(&PriorityClass::Standard));
        assert!(classes.contains(&PriorityClass::Preemptible));
        assert_eq!(s.mix.batch_jobs()[0].0.priority, PriorityClass::Preemptible);
        // Offered load scales linearly with the knob.
        let a = Scenario::overload(1.0);
        let rate = |s: &Scenario| s.mix.services()[0].1.mean_rate();
        assert!((rate(&s) / rate(&a) - 1.5).abs() < 1e-9);
    }
}
