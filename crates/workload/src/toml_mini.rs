//! A minimal, dependency-free TOML-subset parser for scenario files.
//!
//! The vendored `toml`/`serde` crates are offline stubs (DESIGN.md
//! decision 2), so scenario files are parsed by hand — the same
//! discipline as the `evolve_types::codec` binary codec and the
//! hand-rolled JSON reproducers in `chaos_fuzz`. The subset is exactly
//! what [`crate::spec::ScenarioSpec::to_toml`] emits:
//!
//! * `key = value` pairs with bare keys (letters, digits, `_`, `-`);
//! * `[table]` and `[[array-of-tables]]` headers, with dotted paths
//!   (`[service.load]` attaches to the most recent `[[service]]`);
//! * values: basic `"strings"` (escapes `\\ \" \n \t \r`), integers,
//!   floats, booleans, and single-line (possibly nested) arrays;
//! * `#` comments and blank lines.
//!
//! Not supported (rejected with a line-numbered [`ScenarioError::Syntax`]):
//! multi-line strings/arrays, inline tables, dotted or quoted keys,
//! dates, and duplicate keys.

use std::collections::BTreeMap;

use crate::spec::ScenarioError;

/// A parsed TOML scalar or array value.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Value {
    Str(String),
    Int(i64),
    Float(f64),
    Bool(bool),
    Array(Vec<Value>),
}

impl Value {
    /// Human-readable type label for error messages.
    pub(crate) fn type_name(&self) -> &'static str {
        match self {
            Value::Str(_) => "string",
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Bool(_) => "boolean",
            Value::Array(_) => "array",
        }
    }
}

/// One entry of a table: a scalar value, a sub-table, or an array of
/// tables.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Item {
    Value(Value),
    Table(Table),
    TableArray(Vec<Table>),
}

impl Item {
    pub(crate) fn type_name(&self) -> &'static str {
        match self {
            Item::Value(v) => v.type_name(),
            Item::Table(_) => "table",
            Item::TableArray(_) => "array of tables",
        }
    }
}

/// A TOML table: key → (defining line, item). `BTreeMap` keeps error
/// reporting and iteration deterministic.
#[derive(Debug, Clone, PartialEq, Default)]
pub(crate) struct Table {
    /// Line of the header that opened this table (1-based; 0 for root).
    pub line: usize,
    pub entries: BTreeMap<String, (usize, Item)>,
}

impl Table {
    fn with_line(line: usize) -> Table {
        Table { line, entries: BTreeMap::new() }
    }
}

fn syntax(line: usize, detail: impl Into<String>) -> ScenarioError {
    ScenarioError::Syntax { line, detail: detail.into() }
}

/// Parses a complete TOML document into its root table.
pub(crate) fn parse(src: &str) -> Result<Table, ScenarioError> {
    let mut root = Table::default();
    let mut path: Vec<String> = Vec::new();
    for (idx, raw) in src.lines().enumerate() {
        let line_no = idx + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(inner) = line.strip_prefix("[[") {
            let inner = inner
                .strip_suffix("]]")
                .ok_or_else(|| syntax(line_no, "array-of-tables header must end with `]]`"))?;
            let comps = parse_path(inner, line_no)?;
            open_header(&mut root, &comps, true, line_no)?;
            path = comps;
        } else if let Some(inner) = line.strip_prefix('[') {
            let inner = inner
                .strip_suffix(']')
                .ok_or_else(|| syntax(line_no, "table header must end with `]`"))?;
            let comps = parse_path(inner, line_no)?;
            open_header(&mut root, &comps, false, line_no)?;
            path = comps;
        } else {
            let (key, rest) = line
                .split_once('=')
                .ok_or_else(|| syntax(line_no, "expected `key = value` or a `[table]` header"))?;
            let key = key.trim();
            check_bare_key(key, line_no)?;
            let (value, tail) = parse_value(rest, line_no)?;
            if !tail.trim().is_empty() {
                return Err(syntax(
                    line_no,
                    format!("unexpected trailing content after value: `{}`", tail.trim()),
                ));
            }
            let table = target_table(&mut root, &path);
            if table.entries.contains_key(key) {
                return Err(syntax(line_no, format!("duplicate key `{key}`")));
            }
            table.entries.insert(key.to_string(), (line_no, Item::Value(value)));
        }
    }
    Ok(root)
}

/// Splits a dotted header path into validated bare-key components.
fn parse_path(inner: &str, line: usize) -> Result<Vec<String>, ScenarioError> {
    let comps: Vec<String> = inner.split('.').map(|c| c.trim().to_string()).collect();
    for c in &comps {
        check_bare_key(c, line)?;
    }
    Ok(comps)
}

fn check_bare_key(key: &str, line: usize) -> Result<(), ScenarioError> {
    if key.is_empty() || !key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-') {
        return Err(syntax(
            line,
            format!("invalid key `{key}` (bare keys may use letters, digits, `_`, `-`)"),
        ));
    }
    Ok(())
}

/// Creates (or re-opens) the table a `[header]` / `[[header]]` names,
/// growing intermediate tables as needed. For `[[x]]` a fresh element is
/// appended; intermediate components descend into the *last* element of
/// an array of tables, which is what makes `[service.load]` after
/// `[[service]]` attach to the most recent service.
fn open_header(
    root: &mut Table,
    comps: &[String],
    array: bool,
    line: usize,
) -> Result<(), ScenarioError> {
    let mut cur = root;
    for (i, comp) in comps.iter().enumerate() {
        let last = i + 1 == comps.len();
        if !cur.entries.contains_key(comp.as_str()) {
            let item = if last && array {
                Item::TableArray(vec![Table::with_line(line)])
            } else {
                Item::Table(Table::with_line(line))
            };
            cur.entries.insert(comp.clone(), (line, item));
        } else if last {
            match (&cur.entries[comp.as_str()].1, array) {
                (Item::TableArray(_), true) => {
                    if let (_, Item::TableArray(v)) =
                        cur.entries.get_mut(comp.as_str()).expect("checked above")
                    {
                        v.push(Table::with_line(line));
                    }
                }
                (Item::Table(_), false) => {} // re-opening a plain table is fine
                (Item::TableArray(_), false) => {
                    return Err(syntax(
                        line,
                        format!("`{comp}` is an array of tables; use `[[{comp}]]`"),
                    ));
                }
                (Item::Table(_), true) => {
                    return Err(syntax(
                        line,
                        format!("`{comp}` was already defined as a plain `[{comp}]` table"),
                    ));
                }
                (Item::Value(_), _) => {
                    return Err(syntax(line, format!("`{comp}` is a value, not a table")));
                }
            }
        }
        cur = match &mut cur.entries.get_mut(comp.as_str()).expect("inserted above").1 {
            Item::Table(t) => t,
            Item::TableArray(v) => v.last_mut().expect("array of tables is never empty"),
            Item::Value(_) => {
                return Err(syntax(line, format!("`{comp}` is a value, not a table")));
            }
        };
    }
    Ok(())
}

/// Resolves the table a previously-opened header path points at.
fn target_table<'a>(root: &'a mut Table, path: &[String]) -> &'a mut Table {
    let mut cur = root;
    for comp in path {
        cur = match &mut cur.entries.get_mut(comp.as_str()).expect("header opened this path").1 {
            Item::Table(t) => t,
            Item::TableArray(v) => v.last_mut().expect("array of tables is never empty"),
            Item::Value(_) => unreachable!("header opening rejects value components"),
        };
    }
    cur
}

/// Removes a trailing `#` comment, honouring `#` inside strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        if in_str {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_str = false;
            }
        } else if c == '"' {
            in_str = true;
        } else if c == '#' {
            return &line[..i];
        }
    }
    line
}

/// Parses one value from the front of `s`, returning it with the unread
/// remainder of the line.
fn parse_value(s: &str, line: usize) -> Result<(Value, &str), ScenarioError> {
    let s = s.trim_start();
    match s.chars().next() {
        None => Err(syntax(line, "expected a value")),
        Some('"') => {
            let mut out = String::new();
            let mut iter = s.char_indices().skip(1);
            while let Some((i, c)) = iter.next() {
                match c {
                    '"' => return Ok((Value::Str(out), &s[i + 1..])),
                    '\\' => match iter.next() {
                        Some((_, 'n')) => out.push('\n'),
                        Some((_, 't')) => out.push('\t'),
                        Some((_, 'r')) => out.push('\r'),
                        Some((_, '"')) => out.push('"'),
                        Some((_, '\\')) => out.push('\\'),
                        other => {
                            let shown = other.map_or(String::new(), |(_, c)| c.to_string());
                            return Err(syntax(
                                line,
                                format!("unsupported string escape `\\{shown}`"),
                            ));
                        }
                    },
                    c => out.push(c),
                }
            }
            Err(syntax(line, "unterminated string"))
        }
        Some('[') => {
            let mut rest = &s[1..];
            let mut items = Vec::new();
            loop {
                let t = rest.trim_start();
                if let Some(after) = t.strip_prefix(']') {
                    return Ok((Value::Array(items), after));
                }
                let (v, after) = parse_value(t, line)?;
                items.push(v);
                let t = after.trim_start();
                if let Some(after) = t.strip_prefix(',') {
                    rest = after;
                } else if t.starts_with(']') {
                    rest = t;
                } else {
                    return Err(syntax(line, "expected `,` or `]` in array"));
                }
            }
        }
        Some(_) => {
            let end =
                s.find(|c: char| c.is_whitespace() || c == ',' || c == ']').unwrap_or(s.len());
            let (tok, rest) = s.split_at(end);
            match tok {
                "true" => Ok((Value::Bool(true), rest)),
                "false" => Ok((Value::Bool(false), rest)),
                _ => {
                    let clean: String = tok.chars().filter(|c| *c != '_').collect();
                    if clean.contains('.') || clean.contains(['e', 'E']) {
                        clean
                            .parse::<f64>()
                            .map(|f| (Value::Float(f), rest))
                            .map_err(|_| syntax(line, format!("invalid number `{tok}`")))
                    } else {
                        clean
                            .parse::<i64>()
                            .map(|i| (Value::Int(i), rest))
                            .map_err(|_| syntax(line, format!("invalid integer `{tok}`")))
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get<'a>(t: &'a Table, key: &str) -> &'a Item {
        &t.entries[key].1
    }

    #[test]
    fn parses_scalars_and_comments() {
        let t = parse(
            "# header comment\nname = \"web # not a comment\" # trailing\nrate = 1.5\ncount = 3\nflag = true\n",
        )
        .unwrap();
        assert_eq!(get(&t, "name"), &Item::Value(Value::Str("web # not a comment".into())));
        assert_eq!(get(&t, "rate"), &Item::Value(Value::Float(1.5)));
        assert_eq!(get(&t, "count"), &Item::Value(Value::Int(3)));
        assert_eq!(get(&t, "flag"), &Item::Value(Value::Bool(true)));
    }

    #[test]
    fn parses_nested_arrays() {
        let t = parse("points = [[0.0, 60.0], [240.0, 240.0]]\n").unwrap();
        let Item::Value(Value::Array(points)) = get(&t, "points") else {
            panic!("expected array");
        };
        assert_eq!(points.len(), 2);
        assert_eq!(points[1], Value::Array(vec![Value::Float(240.0), Value::Float(240.0)]));
    }

    #[test]
    fn array_of_tables_with_subtable() {
        let src = "[[service]]\nname = \"a\"\n[service.load]\nkind = \"constant\"\n[[service]]\nname = \"b\"\n";
        let t = parse(src).unwrap();
        let Item::TableArray(services) = get(&t, "service") else {
            panic!("expected array of tables");
        };
        assert_eq!(services.len(), 2);
        assert!(services[0].entries.contains_key("load"));
        assert!(!services[1].entries.contains_key("load"));
    }

    #[test]
    fn rejects_duplicate_key_with_line() {
        let err = parse("a = 1\na = 2\n").unwrap_err();
        assert_eq!(err, syntax(2, "duplicate key `a`"));
    }

    #[test]
    fn rejects_unterminated_string() {
        assert!(matches!(
            parse("name = \"web\n").unwrap_err(),
            ScenarioError::Syntax { line: 1, .. }
        ));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(matches!(parse("a = 1 2\n").unwrap_err(), ScenarioError::Syntax { line: 1, .. }));
    }

    #[test]
    fn rejects_value_reopened_as_table() {
        assert!(matches!(
            parse("a = 1\n[a]\nb = 2\n").unwrap_err(),
            ScenarioError::Syntax { line: 2, .. }
        ));
    }

    #[test]
    fn rejects_nan_and_bare_words() {
        assert!(parse("a = nan\n").is_err());
        assert!(parse("a = hello\n").is_err());
    }
}
