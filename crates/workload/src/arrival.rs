//! Request-rate profiles and arrival-time sampling.
//!
//! A [`LoadProfile`] maps simulated time to an instantaneous request rate;
//! [`PoissonArrivals`] draws actual arrival instants from any profile as a
//! non-homogeneous Poisson process. Profiles cover the dynamics that make
//! autoscaling hard: slow diurnal swings, linear ramps, multiplicative
//! flash crowds, Markov-modulated burstiness and recorded traces.
//!
//! Two generation strategies exist (selected by
//! [`SamplingMode`](crate::SamplingMode)):
//!
//! - **Legacy** — per-request Lewis–Shedler thinning under the *global*
//!   rate majorant, exactly as before PR 6 (bit-identical streams).
//! - **Batched** — time is cut into windows clipped at profile shape
//!   boundaries. High-rate windows draw one Poisson count from the
//!   window's mean rate and spread the instants uniformly; low-rate
//!   windows keep exact thinning but under a *per-window* majorant, which
//!   bounds the rejection rate and removes the legacy sampler's silent
//!   100 000-candidate bailout (reachable when a trace or flash-crowd
//!   majorant vastly exceeds the current rate).

use std::collections::VecDeque;

use evolve_types::{SimDuration, SimTime};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::sampling::{sample_exponential, sample_poisson_count, SamplingMode};

/// A time-varying request-rate function (requests/second).
///
/// Implementations may be stochastic (the MMPP keeps internal state), so
/// `rate_at` takes `&mut self` and an RNG. Callers must query `rate_at`
/// with non-decreasing timestamps; [`LoadProfile::peek_rate`] is the pure
/// read for telemetry.
pub trait LoadProfile: Send {
    /// Instantaneous rate at `at`, in requests/second. May advance
    /// internal state and draw from the RNG (MMPP state switches).
    fn rate_at(&mut self, at: SimTime, rng: &mut dyn rand::RngCore) -> f64;

    /// Pure instantaneous-rate read: never advances state, never draws
    /// from the RNG. Stateful profiles (MMPP) clamp the query to their
    /// last-seen state, so a telemetry peek mid-thinning cannot corrupt
    /// the arrival stream.
    fn peek_rate(&self, at: SimTime) -> f64;

    /// An upper bound on the rate over all time (used as the legacy
    /// thinning majorant; must dominate every value `rate_at` can
    /// return).
    fn max_rate(&self) -> f64;

    /// An upper bound on the rate over `[from, to]` (per-window thinning
    /// majorant). Defaults to the global bound; shaped profiles override
    /// it so acceptance stays bounded inside quiet stretches.
    fn majorant_between(&self, _from: SimTime, _to: SimTime) -> f64 {
        self.max_rate()
    }

    /// Mean rate over `[from, to]` for windowed Poisson-count generation,
    /// or `None` when the profile is stochastic and must be thinned.
    fn mean_rate_between(&self, _from: SimTime, _to: SimTime) -> Option<f64> {
        None
    }

    /// The next rate-shape boundary strictly after `at` (spike edges,
    /// trace steps, ramp ends). Generation windows never span a boundary,
    /// so vectorized counts cannot smear a discontinuity.
    fn boundary_after(&self, _at: SimTime) -> Option<SimTime> {
        None
    }

    /// For *stochastic piecewise-constant* profiles (MMPP): advance the
    /// state machine to `at` and return the current rate plus the end of
    /// its constant-rate segment. The batched sampler then generates this
    /// stretch as an exact homogeneous Poisson process — no thinning, no
    /// rejected candidates — which is both cheaper and statistically
    /// exact. Default `None`: fall back to per-window thinning.
    fn segment_after(
        &mut self,
        _at: SimTime,
        _rng: &mut dyn rand::RngCore,
    ) -> Option<(f64, SimTime)> {
        None
    }
}

/// A constant request rate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConstantLoad {
    rate: f64,
}

impl ConstantLoad {
    /// Creates a constant profile of `rate` requests/second.
    ///
    /// # Panics
    ///
    /// Panics when `rate` is negative or non-finite.
    #[must_use]
    pub fn new(rate: f64) -> Self {
        assert!(rate.is_finite() && rate >= 0.0, "rate must be finite and non-negative");
        ConstantLoad { rate }
    }
}

impl LoadProfile for ConstantLoad {
    fn rate_at(&mut self, _at: SimTime, _rng: &mut dyn rand::RngCore) -> f64 {
        self.rate
    }
    fn peek_rate(&self, _at: SimTime) -> f64 {
        self.rate
    }
    fn max_rate(&self) -> f64 {
        self.rate
    }
    fn mean_rate_between(&self, _from: SimTime, _to: SimTime) -> Option<f64> {
        Some(self.rate)
    }
}

/// Number of piecewise-linear cells the diurnal envelope tabulates per
/// period.
const ENVELOPE_CELLS: usize = 256;

/// Precomputed piecewise-linear envelope of one diurnal period: cell-edge
/// rates for lookup + lerp, a prefix integral for window means, and
/// per-cell majorants (chord max plus a curvature pad) that provably
/// dominate the underlying sinusoid.
#[derive(Debug, Clone)]
struct DiurnalEnvelope {
    /// Floored rate at each cell edge (`ENVELOPE_CELLS + 1` entries; the
    /// last equals the first).
    edges: Vec<f64>,
    /// `prefix[i]` = integral (rate·seconds) of the lerped rate over
    /// cells `[0, i)`.
    prefix: Vec<f64>,
    /// Per-cell rate upper bound: `max(edge, edge') + base·amp·(2π/N)²/8`
    /// — the chord maximum padded by the sinusoid's maximum chord
    /// deviation, so it dominates the exact `sin` rate everywhere in the
    /// cell.
    cell_max: Vec<f64>,
    /// Maximum over `cell_max` (the profile's global majorant).
    max: f64,
}

impl DiurnalEnvelope {
    fn build(base: f64, amplitude: f64, period: SimDuration, phase: f64) -> Self {
        let n = ENVELOPE_CELLS;
        let period_secs = period.as_secs_f64();
        let raw = |i: usize| -> f64 {
            let frac = i as f64 / n as f64;
            base * (1.0 + amplitude * (2.0 * std::f64::consts::PI * frac + phase).sin())
        };
        let edges: Vec<f64> = (0..=n).map(|i| raw(i).max(0.0)).collect();
        let h = period_secs / n as f64;
        let mut prefix = Vec::with_capacity(n + 1);
        prefix.push(0.0);
        for i in 0..n {
            let cell = h * (edges[i] + edges[i + 1]) / 2.0;
            prefix.push(prefix[i] + cell);
        }
        // Max deviation of the sinusoid from its chord over one cell is
        // |f''|·h²/8 with |f''| ≤ base·amp·(2π/P)², i.e. independent of
        // the period: base·amp·(2π/N)²/8 ≈ 7.5e-5·base·amp at N = 256.
        let pad = base * amplitude * (2.0 * std::f64::consts::PI / n as f64).powi(2) / 8.0;
        let cell_max: Vec<f64> = (0..n).map(|i| raw(i).max(raw(i + 1)).max(0.0) + pad).collect();
        let max = cell_max.iter().fold(0.0f64, |a, &b| a.max(b));
        DiurnalEnvelope { edges, prefix, cell_max, max }
    }

    /// Integral of the lerped rate over `[0, t)` within one period,
    /// `t ∈ [0, period]`, in rate·seconds.
    fn integral_to(&self, t_secs: f64, period_secs: f64) -> f64 {
        let n = ENVELOPE_CELLS;
        let pos = (t_secs / period_secs * n as f64).clamp(0.0, n as f64);
        let cell = (pos as usize).min(n - 1);
        let frac = pos - cell as f64;
        let h = period_secs / n as f64;
        let r0 = self.edges[cell];
        let r1 = self.edges[cell + 1];
        // Partial trapezoid inside the cell.
        let r_at = r0 + (r1 - r0) * frac;
        self.prefix[cell] + h * frac * (r0 + r_at) / 2.0
    }

    /// Mean rate over `[from, to]` (absolute times), handling period
    /// wrap-around.
    fn mean_between(&self, from: SimTime, to: SimTime, period_secs: f64) -> f64 {
        let a = from.as_secs_f64();
        let b = to.as_secs_f64();
        if b <= a {
            return self.lerp_at(a % period_secs, period_secs);
        }
        let total_per_period = self.prefix[ENVELOPE_CELLS];
        let whole = ((b - a) / period_secs).floor();
        let (ra, rb) = (a % period_secs, (a + (b - a) - whole * period_secs) % period_secs);
        let mut integral = whole * total_per_period;
        if rb >= ra {
            integral += self.integral_to(rb, period_secs) - self.integral_to(ra, period_secs);
        } else {
            integral += total_per_period - self.integral_to(ra, period_secs)
                + self.integral_to(rb, period_secs);
        }
        integral / (b - a)
    }

    /// Lerped rate at a position inside one period.
    fn lerp_at(&self, t_secs: f64, period_secs: f64) -> f64 {
        let n = ENVELOPE_CELLS;
        let pos = (t_secs / period_secs * n as f64).clamp(0.0, n as f64);
        let cell = (pos as usize).min(n - 1);
        let frac = pos - cell as f64;
        self.edges[cell] + (self.edges[cell + 1] - self.edges[cell]) * frac
    }

    /// Upper bound over `[from, to]` (absolute times).
    fn majorant_between(&self, from: SimTime, to: SimTime, period_secs: f64) -> f64 {
        let n = ENVELOPE_CELLS;
        let a = from.as_secs_f64();
        let b = to.as_secs_f64();
        if b - a >= period_secs {
            return self.max;
        }
        let ca = ((a % period_secs) / period_secs * n as f64) as usize % n;
        let cb = ((b % period_secs) / period_secs * n as f64) as usize % n;
        let mut m = 0.0f64;
        let mut c = ca;
        loop {
            m = m.max(self.cell_max[c]);
            if c == cb {
                break;
            }
            c = (c + 1) % n;
        }
        m
    }
}

/// A sinusoidal day/night pattern:
/// `base × (1 + amplitude · sin(2πt/period))`, floored at zero.
///
/// The constructor tabulates a piecewise-linear envelope of one period
/// ([`ENVELOPE_CELLS`] cells): window means and thinning majorants come
/// from the table instead of per-candidate `sin` calls.
/// [`LoadProfile::max_rate`] stays the analytic peak
/// `base × (1 + amplitude)` — it dominates the sinusoid exactly (the
/// phase only shifts where the peak falls) and keeps the legacy thinning
/// majorant bit-identical to the pre-envelope sampler.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(from = "DiurnalRepr", into = "DiurnalRepr")]
pub struct DiurnalLoad {
    base: f64,
    amplitude: f64,
    period: SimDuration,
    phase: f64,
    env: DiurnalEnvelope,
}

/// Serialized form: the logical parameters; the envelope is re-derived on
/// deserialization.
#[derive(Serialize, Deserialize)]
#[serde(rename = "DiurnalLoad")]
struct DiurnalRepr {
    base: f64,
    amplitude: f64,
    period: SimDuration,
    phase: f64,
}

impl From<DiurnalRepr> for DiurnalLoad {
    fn from(r: DiurnalRepr) -> Self {
        DiurnalLoad::new(r.base, r.amplitude, r.period).with_phase(r.phase)
    }
}

impl From<DiurnalLoad> for DiurnalRepr {
    fn from(d: DiurnalLoad) -> Self {
        DiurnalRepr { base: d.base, amplitude: d.amplitude, period: d.period, phase: d.phase }
    }
}

impl PartialEq for DiurnalLoad {
    fn eq(&self, other: &Self) -> bool {
        self.base == other.base
            && self.amplitude == other.amplitude
            && self.period == other.period
            && self.phase == other.phase
    }
}

impl DiurnalLoad {
    /// Creates a diurnal profile around `base` with relative `amplitude`
    /// in `[0, 1]` and the given `period`.
    ///
    /// # Panics
    ///
    /// Panics when `base < 0`, `amplitude` outside `[0, 1]`, or `period`
    /// is zero.
    #[must_use]
    pub fn new(base: f64, amplitude: f64, period: SimDuration) -> Self {
        assert!(base >= 0.0, "base rate must be non-negative");
        assert!((0.0..=1.0).contains(&amplitude), "amplitude must be in [0, 1]");
        assert!(!period.is_zero(), "period must be positive");
        let env = DiurnalEnvelope::build(base, amplitude, period, 0.0);
        DiurnalLoad { base, amplitude, period, phase: 0.0, env }
    }

    /// Shifts the pattern by `phase` radians (stagger multiple services).
    ///
    /// # Panics
    ///
    /// Panics when `phase` is not finite — a NaN/∞ phase would poison
    /// every downstream rate through `sin`.
    #[must_use]
    pub fn with_phase(mut self, phase: f64) -> Self {
        assert!(phase.is_finite(), "phase must be finite");
        self.phase = phase;
        self.env = DiurnalEnvelope::build(self.base, self.amplitude, self.period, phase);
        self
    }

    fn exact_rate(&self, at: SimTime) -> f64 {
        let x = at.as_secs_f64() / self.period.as_secs_f64();
        let r = self.base
            * (1.0 + self.amplitude * (2.0 * std::f64::consts::PI * x + self.phase).sin());
        r.max(0.0)
    }
}

impl LoadProfile for DiurnalLoad {
    fn rate_at(&mut self, at: SimTime, _rng: &mut dyn rand::RngCore) -> f64 {
        self.exact_rate(at)
    }
    fn peek_rate(&self, at: SimTime) -> f64 {
        self.exact_rate(at)
    }
    fn max_rate(&self) -> f64 {
        self.base * (1.0 + self.amplitude)
    }
    fn majorant_between(&self, from: SimTime, to: SimTime) -> f64 {
        self.env.majorant_between(from, to, self.period.as_secs_f64())
    }
    fn mean_rate_between(&self, from: SimTime, to: SimTime) -> Option<f64> {
        Some(self.env.mean_between(from, to, self.period.as_secs_f64()))
    }
    fn boundary_after(&self, at: SimTime) -> Option<SimTime> {
        // Next envelope cell edge, so per-window majorants stay tight.
        let cell_secs = self.period.as_secs_f64() / ENVELOPE_CELLS as f64;
        let idx = (at.as_secs_f64() / cell_secs).floor() + 1.0;
        Some(SimTime::ZERO + SimDuration::from_secs_f64(idx * cell_secs))
    }
}

/// A linear ramp from `from` to `to` over `duration`, constant afterwards.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RampLoad {
    from: f64,
    to: f64,
    duration: SimDuration,
}

impl RampLoad {
    /// Creates a ramp profile.
    ///
    /// # Panics
    ///
    /// Panics when either rate is negative or `duration` is zero.
    #[must_use]
    pub fn new(from: f64, to: f64, duration: SimDuration) -> Self {
        assert!(from >= 0.0 && to >= 0.0, "rates must be non-negative");
        assert!(!duration.is_zero(), "ramp duration must be positive");
        RampLoad { from, to, duration }
    }

    fn rate(&self, at: SimTime) -> f64 {
        let frac = (at.as_secs_f64() / self.duration.as_secs_f64()).min(1.0);
        self.from + (self.to - self.from) * frac
    }
}

impl LoadProfile for RampLoad {
    fn rate_at(&mut self, at: SimTime, _rng: &mut dyn rand::RngCore) -> f64 {
        self.rate(at)
    }
    fn peek_rate(&self, at: SimTime) -> f64 {
        self.rate(at)
    }
    fn max_rate(&self) -> f64 {
        self.from.max(self.to)
    }
    fn majorant_between(&self, from: SimTime, to: SimTime) -> f64 {
        // Linear between the clamped endpoints, so the endpoint max
        // dominates.
        self.rate(from).max(self.rate(to))
    }
    fn mean_rate_between(&self, from: SimTime, to: SimTime) -> Option<f64> {
        // Trapezoid; windows never span the ramp end (see
        // `boundary_after`), where the function stops being linear.
        Some((self.rate(from) + self.rate(to)) / 2.0)
    }
    fn boundary_after(&self, at: SimTime) -> Option<SimTime> {
        let end = SimTime::ZERO + self.duration;
        (at < end).then_some(end)
    }
}

/// A flash crowd: `base` rate, multiplied by `spike_factor` during
/// `[start, start+duration)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlashCrowdLoad {
    base: f64,
    spike_factor: f64,
    start: SimTime,
    duration: SimDuration,
}

impl FlashCrowdLoad {
    /// Creates a flash-crowd profile.
    ///
    /// # Panics
    ///
    /// Panics when `base < 0` or `spike_factor < 1`.
    #[must_use]
    pub fn new(base: f64, spike_factor: f64, start: SimTime, duration: SimDuration) -> Self {
        assert!(base >= 0.0, "base rate must be non-negative");
        assert!(spike_factor >= 1.0, "spike factor must be at least 1");
        FlashCrowdLoad { base, spike_factor, start, duration }
    }

    /// When the spike begins.
    #[must_use]
    pub fn spike_start(&self) -> SimTime {
        self.start
    }

    fn spike_end(&self) -> SimTime {
        self.start + self.duration
    }

    fn rate(&self, at: SimTime) -> f64 {
        if at >= self.start && at < self.spike_end() {
            self.base * self.spike_factor
        } else {
            self.base
        }
    }
}

impl LoadProfile for FlashCrowdLoad {
    fn rate_at(&mut self, at: SimTime, _rng: &mut dyn rand::RngCore) -> f64 {
        self.rate(at)
    }
    fn peek_rate(&self, at: SimTime) -> f64 {
        self.rate(at)
    }
    fn max_rate(&self) -> f64 {
        self.base * self.spike_factor
    }
    fn majorant_between(&self, from: SimTime, to: SimTime) -> f64 {
        if from < self.spike_end() && to >= self.start {
            self.base * self.spike_factor
        } else {
            self.base
        }
    }
    fn mean_rate_between(&self, from: SimTime, to: SimTime) -> Option<f64> {
        // Windows are clipped at the spike edges (`boundary_after`), so
        // the span sits entirely on one side — but integrate exactly
        // anyway for arbitrary callers.
        let a = from.as_secs_f64();
        let b = to.as_secs_f64();
        if b <= a {
            return Some(self.rate(from));
        }
        let s = self.start.as_secs_f64();
        let e = self.spike_end().as_secs_f64();
        let hot = (b.min(e) - a.max(s)).max(0.0);
        let cold = (b - a) - hot;
        Some((cold * self.base + hot * self.base * self.spike_factor) / (b - a))
    }
    fn boundary_after(&self, at: SimTime) -> Option<SimTime> {
        if at < self.start {
            Some(self.start)
        } else if at < self.spike_end() {
            Some(self.spike_end())
        } else {
            None
        }
    }
}

/// A two-state Markov-modulated Poisson process (bursty traffic): the rate
/// alternates between `low_rate` and `high_rate`, with exponentially
/// distributed dwell times in each state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MmppLoad {
    low_rate: f64,
    high_rate: f64,
    mean_dwell: SimDuration,
    /// Current state (false = low).
    in_high: bool,
    /// When the current state expires.
    next_switch: SimTime,
}

impl MmppLoad {
    /// Creates a bursty profile alternating between the two rates with
    /// the given mean state dwell time.
    ///
    /// # Panics
    ///
    /// Panics when rates are negative, inverted, or `mean_dwell` is zero.
    #[must_use]
    pub fn new(low_rate: f64, high_rate: f64, mean_dwell: SimDuration) -> Self {
        assert!(low_rate >= 0.0 && high_rate >= low_rate, "need 0 <= low <= high");
        assert!(!mean_dwell.is_zero(), "mean dwell must be positive");
        MmppLoad { low_rate, high_rate, mean_dwell, in_high: false, next_switch: SimTime::ZERO }
    }
}

impl LoadProfile for MmppLoad {
    fn rate_at(&mut self, at: SimTime, rng: &mut dyn rand::RngCore) -> f64 {
        while at >= self.next_switch {
            self.in_high = !self.in_high;
            let dwell = sample_exponential(rng, 1.0 / self.mean_dwell.as_secs_f64());
            self.next_switch += SimDuration::from_secs_f64(dwell.max(1e-3));
        }
        if self.in_high {
            self.high_rate
        } else {
            self.low_rate
        }
    }
    /// Clamped to the last state `rate_at` advanced to: a telemetry peek
    /// at any timestamp reports the current state's rate without touching
    /// the state machine or the RNG.
    fn peek_rate(&self, _at: SimTime) -> f64 {
        if self.in_high {
            self.high_rate
        } else {
            self.low_rate
        }
    }
    fn max_rate(&self) -> f64 {
        self.high_rate
    }
    fn segment_after(
        &mut self,
        at: SimTime,
        rng: &mut dyn rand::RngCore,
    ) -> Option<(f64, SimTime)> {
        // Same state walk as `rate_at`, so legacy thinning and the exact
        // segment path share one dwell machine (and one RNG draw order).
        while at >= self.next_switch {
            self.in_high = !self.in_high;
            let dwell = sample_exponential(rng, 1.0 / self.mean_dwell.as_secs_f64());
            self.next_switch += SimDuration::from_secs_f64(dwell.max(1e-3));
        }
        let rate = if self.in_high { self.high_rate } else { self.low_rate };
        Some((rate, self.next_switch))
    }
}

/// Piecewise-constant playback of a recorded `(time, rate)` trace; the
/// last rate persists beyond the trace end.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceLoad {
    points: Vec<(SimTime, f64)>,
}

impl TraceLoad {
    /// Creates a trace profile from time-ordered `(time, rate)` points.
    ///
    /// # Panics
    ///
    /// Panics when the trace is empty, unsorted, or contains negative
    /// rates.
    #[must_use]
    pub fn new(points: Vec<(SimTime, f64)>) -> Self {
        assert!(!points.is_empty(), "trace must not be empty");
        assert!(points.windows(2).all(|w| w[0].0 <= w[1].0), "trace must be time-ordered");
        assert!(points.iter().all(|(_, r)| *r >= 0.0), "trace rates must be non-negative");
        TraceLoad { points }
    }

    fn rate(&self, at: SimTime) -> f64 {
        match self.points.partition_point(|(t, _)| *t <= at) {
            0 => self.points[0].1,
            n => self.points[n - 1].1,
        }
    }
}

impl LoadProfile for TraceLoad {
    fn rate_at(&mut self, at: SimTime, _rng: &mut dyn rand::RngCore) -> f64 {
        self.rate(at)
    }
    fn peek_rate(&self, at: SimTime) -> f64 {
        self.rate(at)
    }
    fn max_rate(&self) -> f64 {
        self.points.iter().map(|(_, r)| *r).fold(0.0, f64::max)
    }
    fn majorant_between(&self, from: SimTime, to: SimTime) -> f64 {
        // Steps holding in [from, to]: the one in force at `from` plus
        // every step starting inside the span.
        let mut m = self.rate(from);
        let start = self.points.partition_point(|(t, _)| *t <= from);
        for (t, r) in &self.points[start..] {
            if *t > to {
                break;
            }
            m = m.max(*r);
        }
        m
    }
    fn mean_rate_between(&self, from: SimTime, to: SimTime) -> Option<f64> {
        let a = from.as_secs_f64();
        let b = to.as_secs_f64();
        if b <= a {
            return Some(self.rate(from));
        }
        // Piecewise-constant integral across the steps inside the span.
        let mut integral = 0.0;
        let mut cursor = a;
        let mut rate = self.rate(from);
        let start = self.points.partition_point(|(t, _)| *t <= from);
        for (t, r) in &self.points[start..] {
            let ts = t.as_secs_f64();
            if ts >= b {
                break;
            }
            integral += (ts - cursor) * rate;
            cursor = ts;
            rate = *r;
        }
        integral += (b - cursor) * rate;
        Some(integral / (b - a))
    }
    fn boundary_after(&self, at: SimTime) -> Option<SimTime> {
        let idx = self.points.partition_point(|(t, _)| *t <= at);
        self.points.get(idx).map(|(t, _)| *t)
    }
}

/// Generation window length for the batched arrival path.
const ARRIVAL_WINDOW: SimDuration = SimDuration::from_millis(1000);
/// Expected arrivals per window above which the Poisson-count fast path
/// replaces exact thinning.
const WINDOW_COUNT_THRESHOLD: f64 = 4.0;

/// Samples arrival instants from a [`LoadProfile`].
///
/// In [`SamplingMode::Legacy`] every instant comes from Lewis–Shedler
/// thinning under the global majorant (the pre-PR-6 stream, preserved
/// bit-for-bit). In [`SamplingMode::Batched`] (default), deterministic
/// profiles generate per-window Poisson counts above
/// [`WINDOW_COUNT_THRESHOLD`] expected arrivals and fall back to
/// per-window-majorant thinning below it; stochastic profiles (MMPP)
/// always thin.
///
/// # Examples
///
/// ```
/// use evolve_workload::{ConstantLoad, PoissonArrivals};
/// use evolve_types::SimTime;
/// use rand::SeedableRng;
/// use rand_chacha::ChaCha8Rng;
///
/// let mut arr = PoissonArrivals::new(Box::new(ConstantLoad::new(50.0)));
/// let mut rng = ChaCha8Rng::seed_from_u64(3);
/// let mut t = SimTime::ZERO;
/// let mut count = 0;
/// while let Some(next) = arr.next_after(t, &mut rng) {
///     if next > SimTime::from_secs(10) { break; }
///     t = next;
///     count += 1;
/// }
/// // ~500 arrivals in 10 s at 50 req/s.
/// assert!(count > 400 && count < 600);
/// ```
pub struct PoissonArrivals {
    profile: Box<dyn LoadProfile>,
    mode: SamplingMode,
    /// Pre-generated instants (batched mode), strictly increasing.
    pending: VecDeque<SimTime>,
    /// Exclusive end of the last generated window (batched mode).
    win_end: SimTime,
    /// Legacy thinning bailouts (100 000 rejected candidates) observed.
    bailouts: u64,
}

impl std::fmt::Debug for PoissonArrivals {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PoissonArrivals")
            .field("max_rate", &self.profile.max_rate())
            .field("mode", &self.mode)
            .finish()
    }
}

impl PoissonArrivals {
    /// Creates a sampler over the given profile with the default
    /// (batched) generation mode.
    #[must_use]
    pub fn new(profile: Box<dyn LoadProfile>) -> Self {
        Self::with_mode(profile, SamplingMode::default())
    }

    /// Creates a sampler with an explicit generation mode.
    #[must_use]
    pub fn with_mode(profile: Box<dyn LoadProfile>, mode: SamplingMode) -> Self {
        PoissonArrivals {
            profile,
            mode,
            pending: VecDeque::new(),
            win_end: SimTime::ZERO,
            bailouts: 0,
        }
    }

    /// The next arrival strictly after `after`, or `None` when the profile
    /// rate is (effectively) zero forever.
    pub fn next_after<R: Rng>(&mut self, after: SimTime, rng: &mut R) -> Option<SimTime> {
        match self.mode {
            SamplingMode::Legacy => self.next_after_legacy(after, rng),
            SamplingMode::Batched => self.next_after_batched(after, rng),
        }
    }

    /// Pre-PR-6 global-majorant thinning, preserved bit-for-bit for the
    /// `legacy_sampling` flag.
    fn next_after_legacy<R: Rng>(&mut self, after: SimTime, rng: &mut R) -> Option<SimTime> {
        let majorant = self.profile.max_rate();
        if majorant <= 1e-12 {
            return None;
        }
        let mut t = after;
        // Thinning: candidate gaps at the majorant rate, accept with
        // probability rate(t)/majorant.
        for _ in 0..100_000 {
            let gap = sample_exponential(rng, majorant);
            // Clock resolution is 1µs; guarantee strictly increasing times.
            let gap = SimDuration::from_secs_f64(gap).max(SimDuration::from_micros(1));
            t += gap;
            let r = self.profile.rate_at(t, rng);
            if rng.gen::<f64>() * majorant <= r {
                return Some(t);
            }
        }
        // Pathologically low acceptance; the app goes silent, but the
        // bailout is surfaced on RunOutcome instead of failing silently.
        self.bailouts += 1;
        None
    }

    fn next_after_batched<R: Rng>(&mut self, after: SimTime, rng: &mut R) -> Option<SimTime> {
        loop {
            while let Some(&t) = self.pending.front() {
                if t > after {
                    return Some(t);
                }
                self.pending.pop_front();
            }
            let w0 = self.win_end.max(after);
            // Window end: one window length, clipped at the next shape
            // boundary so counts never smear a discontinuity.
            let mut w1 = w0 + ARRIVAL_WINDOW;
            if let Some(b) = self.profile.boundary_after(w0) {
                if b > w0 {
                    w1 = w1.min(b);
                }
            }
            // Stochastic piecewise-constant profiles (MMPP) expose their
            // current dwell segment: inside it the process is homogeneous
            // Poisson, so sample it exactly — counts + uniform spread at
            // high rate, exponential gaps at low rate — instead of
            // thinning (which rejects ~majorant/rate candidates each).
            if let Some((rate, seg_end)) = self.profile.segment_after(w0, rng) {
                let w1 = w1.min(seg_end.max(w0 + SimDuration::from_micros(1)));
                let span_secs = w1.saturating_since(w0).as_secs_f64();
                let expected = rate * span_secs;
                if expected >= WINDOW_COUNT_THRESHOLD {
                    let n = sample_poisson_count(rng, expected);
                    self.fill_window(w0, w1, n, rng);
                    self.win_end = w1;
                    continue;
                }
                if rate > 1e-12 {
                    // Exact gaps at the segment rate; memoryless, so
                    // restarting from `w0` on the next call is exact.
                    let mut t = w0;
                    loop {
                        let gap = sample_exponential(rng, rate);
                        let gap = SimDuration::from_secs_f64(gap).max(SimDuration::from_micros(1));
                        t += gap;
                        if t >= w1 {
                            break;
                        }
                        if t > after {
                            return Some(t);
                        }
                    }
                }
                self.win_end = w1;
                continue;
            }
            let span_secs = w1.saturating_since(w0).as_secs_f64();
            if let Some(mean) = self.profile.mean_rate_between(w0, w1) {
                let expected = mean * span_secs;
                if expected >= WINDOW_COUNT_THRESHOLD {
                    let n = sample_poisson_count(rng, expected);
                    self.fill_window(w0, w1, n, rng);
                    self.win_end = w1;
                    continue;
                }
            }
            // Exact thinning inside [w0, w1) under the span majorant, so
            // acceptance stays bounded even when the global peak dwarfs
            // the local rate (the legacy bailout scenario).
            let majorant = self.profile.majorant_between(w0, w1);
            if majorant <= 1e-12 {
                self.profile.boundary_after(w0)?; // None: silent forever
                self.win_end = w1;
                continue;
            }
            let mut t = w0;
            loop {
                let gap = sample_exponential(rng, majorant);
                let gap = SimDuration::from_secs_f64(gap).max(SimDuration::from_micros(1));
                t += gap;
                if t >= w1 {
                    break;
                }
                let r = self.profile.rate_at(t, rng);
                if rng.gen::<f64>() * majorant <= r && t > after {
                    return Some(t);
                }
            }
            self.win_end = w1;
        }
    }

    /// Draws `n` instants uniformly in `(w0, w1]`, sorted and separated
    /// by at least the 1µs clock resolution.
    fn fill_window<R: Rng>(&mut self, w0: SimTime, w1: SimTime, n: u64, rng: &mut R) {
        if n == 0 {
            return;
        }
        let span = w1.saturating_since(w0).as_secs_f64();
        let base = self.pending.len();
        for _ in 0..n {
            // 1-u ∈ (0, 1] keeps instants strictly after the window open.
            let u: f64 = rng.gen();
            self.pending.push_back(w0 + SimDuration::from_secs_f64((1.0 - u) * span));
        }
        let tail = self.pending.make_contiguous();
        tail[base..].sort_unstable();
        let min_gap = SimDuration::from_micros(1);
        for i in base.max(1)..tail.len() {
            if tail[i] <= tail[i - 1] {
                tail[i] = tail[i - 1] + min_gap;
            }
        }
    }

    /// The profile's instantaneous rate, as a pure peek: telemetry can
    /// call this at any timestamp without advancing stateful profiles or
    /// consuming RNG state (see [`LoadProfile::peek_rate`]).
    #[must_use]
    pub fn peek_rate(&self, at: SimTime) -> f64 {
        self.profile.peek_rate(at)
    }

    /// How many times legacy thinning gave up after 100 000 rejected
    /// candidates (each bailout silences the stream until the next poll).
    #[must_use]
    pub fn thinning_bailouts(&self) -> u64 {
        self.bailouts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(7)
    }

    fn collect_arrivals(arr: &mut PoissonArrivals, horizon_secs: u64, seed: u64) -> Vec<SimTime> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let horizon = SimTime::from_secs(horizon_secs);
        let mut t = SimTime::ZERO;
        let mut out = Vec::new();
        while let Some(next) = arr.next_after(t, &mut rng) {
            if next > horizon {
                break;
            }
            t = next;
            out.push(next);
        }
        out
    }

    fn count_arrivals(profile: Box<dyn LoadProfile>, horizon_secs: u64, seed: u64) -> usize {
        let mut arr = PoissonArrivals::new(profile);
        collect_arrivals(&mut arr, horizon_secs, seed).len()
    }

    fn count_arrivals_legacy(profile: Box<dyn LoadProfile>, horizon_secs: u64, seed: u64) -> usize {
        let mut arr = PoissonArrivals::with_mode(profile, SamplingMode::Legacy);
        collect_arrivals(&mut arr, horizon_secs, seed).len()
    }

    #[test]
    fn constant_rate_counts_match() {
        let n = count_arrivals(Box::new(ConstantLoad::new(100.0)), 100, 1);
        assert!((9_000..11_000).contains(&n), "arrivals {n}");
    }

    #[test]
    fn constant_rate_counts_match_legacy() {
        let n = count_arrivals_legacy(Box::new(ConstantLoad::new(100.0)), 100, 1);
        assert!((9_000..11_000).contains(&n), "arrivals {n}");
    }

    #[test]
    fn zero_rate_produces_nothing() {
        let mut arr = PoissonArrivals::new(Box::new(ConstantLoad::new(0.0)));
        assert_eq!(arr.next_after(SimTime::ZERO, &mut rng()), None);
        let mut arr =
            PoissonArrivals::with_mode(Box::new(ConstantLoad::new(0.0)), SamplingMode::Legacy);
        assert_eq!(arr.next_after(SimTime::ZERO, &mut rng()), None);
    }

    #[test]
    fn diurnal_peaks_and_troughs() {
        let mut d = DiurnalLoad::new(100.0, 0.5, SimDuration::from_secs(3600));
        let mut r = rng();
        // Peak at period/4, trough at 3·period/4.
        let peak = d.rate_at(SimTime::from_secs(900), &mut r);
        let trough = d.rate_at(SimTime::from_secs(2700), &mut r);
        assert!((peak - 150.0).abs() < 1.0, "peak {peak}");
        assert!((trough - 50.0).abs() < 1.0, "trough {trough}");
        assert!((d.max_rate() - 150.0).abs() < 0.01, "max {}", d.max_rate());
    }

    #[test]
    fn diurnal_full_amplitude_floors_at_zero() {
        let mut d = DiurnalLoad::new(10.0, 1.0, SimDuration::from_secs(100));
        let mut r = rng();
        let trough = d.rate_at(SimTime::from_secs(75), &mut r);
        assert!(trough.abs() < 1e-9);
    }

    #[test]
    fn diurnal_majorant_dominates_exact_rate() {
        let d = DiurnalLoad::new(120.0, 0.8, SimDuration::from_secs(1000)).with_phase(0.9);
        for i in 0..10_000 {
            let t = SimTime::from_millis(i * 250);
            let exact = d.peek_rate(t);
            assert!(d.max_rate() >= exact, "global majorant below rate at {t:?}");
            let span_end = t + SimDuration::from_millis(400);
            assert!(
                d.majorant_between(t, span_end) >= exact - 1e-12,
                "span majorant below rate at {t:?}"
            );
        }
    }

    #[test]
    fn diurnal_envelope_mean_tracks_sinusoid() {
        let d = DiurnalLoad::new(100.0, 0.7, SimDuration::from_secs(400));
        // Over one full period the mean must be ~base.
        let mean = d.mean_rate_between(SimTime::ZERO, SimTime::from_secs(400)).unwrap();
        assert!((mean - 100.0).abs() < 0.1, "mean {mean}");
        // Over the rising quarter the mean must sit well above base.
        let q = d.mean_rate_between(SimTime::from_secs(50), SimTime::from_secs(150)).unwrap();
        assert!(q > 130.0, "quarter mean {q}");
    }

    #[test]
    #[should_panic(expected = "phase must be finite")]
    fn diurnal_rejects_non_finite_phase() {
        let _ = DiurnalLoad::new(10.0, 0.5, SimDuration::from_secs(60)).with_phase(f64::NAN);
    }

    #[test]
    fn ramp_interpolates_then_holds() {
        let mut p = RampLoad::new(10.0, 110.0, SimDuration::from_secs(100));
        let mut r = rng();
        assert_eq!(p.rate_at(SimTime::ZERO, &mut r), 10.0);
        assert!((p.rate_at(SimTime::from_secs(50), &mut r) - 60.0).abs() < 1e-9);
        assert_eq!(p.rate_at(SimTime::from_secs(500), &mut r), 110.0);
    }

    #[test]
    fn flash_crowd_window() {
        let mut p =
            FlashCrowdLoad::new(20.0, 5.0, SimTime::from_secs(100), SimDuration::from_secs(50));
        let mut r = rng();
        assert_eq!(p.rate_at(SimTime::from_secs(99), &mut r), 20.0);
        assert_eq!(p.rate_at(SimTime::from_secs(100), &mut r), 100.0);
        assert_eq!(p.rate_at(SimTime::from_secs(149), &mut r), 100.0);
        assert_eq!(p.rate_at(SimTime::from_secs(150), &mut r), 20.0);
        assert_eq!(p.spike_start(), SimTime::from_secs(100));
    }

    #[test]
    fn mmpp_visits_both_states() {
        let mut p = MmppLoad::new(10.0, 100.0, SimDuration::from_secs(5));
        let mut r = rng();
        let mut seen_low = false;
        let mut seen_high = false;
        for s in 0..200u64 {
            let rate = p.rate_at(SimTime::from_secs(s), &mut r);
            if rate == 10.0 {
                seen_low = true;
            }
            if rate == 100.0 {
                seen_high = true;
            }
        }
        assert!(seen_low && seen_high);
    }

    #[test]
    fn trace_playback_steps() {
        let mut p = TraceLoad::new(vec![
            (SimTime::from_secs(0), 5.0),
            (SimTime::from_secs(10), 50.0),
            (SimTime::from_secs(20), 15.0),
        ]);
        let mut r = rng();
        assert_eq!(p.rate_at(SimTime::from_secs(5), &mut r), 5.0);
        assert_eq!(p.rate_at(SimTime::from_secs(10), &mut r), 50.0);
        assert_eq!(p.rate_at(SimTime::from_secs(99), &mut r), 15.0);
        assert_eq!(p.max_rate(), 50.0);
    }

    #[test]
    fn diurnal_arrival_counts_track_rate() {
        // One full period: total arrivals ≈ base × horizon.
        let n = count_arrivals(
            Box::new(DiurnalLoad::new(50.0, 0.9, SimDuration::from_secs(100))),
            100,
            5,
        );
        assert!((4_000..6_000).contains(&n), "arrivals {n}");
    }

    #[test]
    fn diurnal_arrival_counts_track_rate_legacy() {
        let n = count_arrivals_legacy(
            Box::new(DiurnalLoad::new(50.0, 0.9, SimDuration::from_secs(100))),
            100,
            5,
        );
        assert!((4_000..6_000).contains(&n), "arrivals {n}");
    }

    #[test]
    fn arrivals_are_strictly_increasing() {
        for mode in [SamplingMode::Legacy, SamplingMode::Batched] {
            let mut arr = PoissonArrivals::with_mode(Box::new(ConstantLoad::new(1000.0)), mode);
            let mut r = rng();
            let mut t = SimTime::ZERO;
            for _ in 0..1000 {
                let next = arr.next_after(t, &mut r).unwrap();
                assert!(next > t, "{mode:?}");
                t = next;
            }
        }
    }

    #[test]
    fn deterministic_with_same_seed() {
        for mode in [SamplingMode::Legacy, SamplingMode::Batched] {
            let mut a = PoissonArrivals::with_mode(Box::new(ConstantLoad::new(100.0)), mode);
            let mut b = PoissonArrivals::with_mode(Box::new(ConstantLoad::new(100.0)), mode);
            assert_eq!(
                collect_arrivals(&mut a, 10, 99),
                collect_arrivals(&mut b, 10, 99),
                "{mode:?}"
            );
        }
    }

    #[test]
    fn windowed_counts_match_poisson_moments() {
        // 200 req/s over 200 s: windowed path; mean count ≈ rate·horizon
        // with Poisson dispersion.
        let mut total = 0usize;
        let runs = 20;
        for seed in 0..runs {
            total += count_arrivals(Box::new(ConstantLoad::new(200.0)), 200, seed);
        }
        let mean = total as f64 / runs as f64;
        assert!((mean - 40_000.0).abs() < 300.0, "mean {mean}");
    }

    #[test]
    fn flash_crowd_vectorized_respects_window_edges() {
        // Spike 10× on [100, 150): the vectorized path must confine the
        // elevated density exactly to the spike window.
        let start = SimTime::from_secs(100);
        let dur = SimDuration::from_secs(50);
        let arrivals = {
            let mut arr =
                PoissonArrivals::new(Box::new(FlashCrowdLoad::new(40.0, 10.0, start, dur)));
            collect_arrivals(&mut arr, 300, 11)
        };
        let end = start + dur;
        let before = arrivals.iter().filter(|t| **t < start).count() as f64 / 100.0;
        let during = arrivals.iter().filter(|t| **t >= start && **t < end).count() as f64 / 50.0;
        let after = arrivals.iter().filter(|t| **t >= end).count() as f64 / 150.0;
        assert!((before - 40.0).abs() < 6.0, "pre-spike rate {before}");
        assert!((during - 400.0).abs() < 25.0, "spike rate {during}");
        assert!((after - 40.0).abs() < 6.0, "post-spike rate {after}");
        // Boundary sharpness: the second right before the spike stays at
        // base density, the second right after its end likewise.
        let edge_pre = arrivals
            .iter()
            .filter(|t| **t >= start - SimDuration::from_secs(1) && **t < start)
            .count();
        let edge_post =
            arrivals.iter().filter(|t| **t >= end && **t < end + SimDuration::from_secs(1)).count();
        assert!(edge_pre < 150, "pre-edge leak: {edge_pre} arrivals in 1s at base 40/s");
        assert!(edge_post < 150, "post-edge leak: {edge_post} arrivals in 1s at base 40/s");
    }

    #[test]
    fn trace_with_silent_tail_terminates_without_bailout() {
        // Legacy: max_rate 5000 vs current rate 1e-6 → acceptance 2e-10,
        // 100k candidates exhausted → silent bailout. Batched: the
        // per-window majorant keeps acceptance at 1, no bailout possible.
        let trace = vec![
            (SimTime::from_secs(0), 1e-6),
            (SimTime::from_secs(3600), 5000.0),
            (SimTime::from_secs(3601), 1e-6),
        ];
        let mut arr = PoissonArrivals::new(Box::new(TraceLoad::new(trace.clone())));
        let mut r = rng();
        let next = arr.next_after(SimTime::ZERO, &mut r);
        assert!(next.is_some(), "batched path must find the next arrival");
        assert_eq!(arr.thinning_bailouts(), 0);

        let mut legacy =
            PoissonArrivals::with_mode(Box::new(TraceLoad::new(trace)), SamplingMode::Legacy);
        let mut r = rng();
        let next = legacy.next_after(SimTime::ZERO, &mut r);
        // The legacy sampler bails (surfaced via the counter) — exactly
        // the bug the batched path fixes.
        assert!(next.is_none());
        assert_eq!(legacy.thinning_bailouts(), 1);
    }

    #[test]
    fn peek_rate_does_not_corrupt_mmpp_arrivals() {
        let make =
            || PoissonArrivals::new(Box::new(MmppLoad::new(5.0, 80.0, SimDuration::from_secs(10))));
        // Stream A: arrivals only.
        let mut a = make();
        let arrivals_a = collect_arrivals(&mut a, 120, 21);
        // Stream B: same seed, but telemetry peeks (including
        // non-monotone timestamps) interleaved between arrivals.
        let mut b = make();
        let mut r = ChaCha8Rng::seed_from_u64(21);
        let horizon = SimTime::from_secs(120);
        let mut t = SimTime::ZERO;
        let mut arrivals_b = Vec::new();
        while let Some(next) = b.next_after(t, &mut r) {
            if next > horizon {
                break;
            }
            let _ = b.peek_rate(next + SimDuration::from_secs(1000));
            let _ = b.peek_rate(SimTime::ZERO);
            t = next;
            arrivals_b.push(next);
        }
        assert_eq!(arrivals_a, arrivals_b, "peeking changed the arrival stream");
    }

    #[test]
    fn mmpp_peek_rate_matches_last_seen_state() {
        let mut p = MmppLoad::new(10.0, 100.0, SimDuration::from_secs(5));
        let mut r = rng();
        for s in 0..50u64 {
            let advanced = p.rate_at(SimTime::from_secs(s), &mut r);
            assert_eq!(p.peek_rate(SimTime::from_secs(s)), advanced);
        }
    }

    #[test]
    #[should_panic(expected = "trace must be time-ordered")]
    fn trace_rejects_unsorted() {
        let _ = TraceLoad::new(vec![(SimTime::from_secs(5), 1.0), (SimTime::from_secs(1), 1.0)]);
    }
}
