//! Request-rate profiles and arrival-time sampling.
//!
//! A [`LoadProfile`] maps simulated time to an instantaneous request rate;
//! [`PoissonArrivals`] draws actual arrival instants from any profile via
//! Lewis–Shedler thinning (a non-homogeneous Poisson process). Profiles
//! cover the dynamics that make autoscaling hard: slow diurnal swings,
//! linear ramps, multiplicative flash crowds, Markov-modulated burstiness
//! and recorded traces.

use evolve_types::{SimDuration, SimTime};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::sampling::sample_exponential;

/// A time-varying request-rate function (requests/second).
///
/// Implementations may be stochastic (the MMPP keeps internal state), so
/// `rate_at` takes `&mut self` and an RNG. Callers must query with
/// non-decreasing timestamps.
pub trait LoadProfile: Send {
    /// Instantaneous rate at `at`, in requests/second.
    fn rate_at(&mut self, at: SimTime, rng: &mut dyn rand::RngCore) -> f64;

    /// An upper bound on the rate over all time (used as the thinning
    /// majorant; must dominate every value `rate_at` can return).
    fn max_rate(&self) -> f64;
}

/// A constant request rate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConstantLoad {
    rate: f64,
}

impl ConstantLoad {
    /// Creates a constant profile of `rate` requests/second.
    ///
    /// # Panics
    ///
    /// Panics when `rate` is negative or non-finite.
    #[must_use]
    pub fn new(rate: f64) -> Self {
        assert!(rate.is_finite() && rate >= 0.0, "rate must be finite and non-negative");
        ConstantLoad { rate }
    }
}

impl LoadProfile for ConstantLoad {
    fn rate_at(&mut self, _at: SimTime, _rng: &mut dyn rand::RngCore) -> f64 {
        self.rate
    }
    fn max_rate(&self) -> f64 {
        self.rate
    }
}

/// A sinusoidal day/night pattern:
/// `base × (1 + amplitude · sin(2πt/period))`, floored at zero.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiurnalLoad {
    base: f64,
    amplitude: f64,
    period: SimDuration,
    phase: f64,
}

impl DiurnalLoad {
    /// Creates a diurnal profile around `base` with relative `amplitude`
    /// in `[0, 1]` and the given `period`.
    ///
    /// # Panics
    ///
    /// Panics when `base < 0`, `amplitude` outside `[0, 1]`, or `period`
    /// is zero.
    #[must_use]
    pub fn new(base: f64, amplitude: f64, period: SimDuration) -> Self {
        assert!(base >= 0.0, "base rate must be non-negative");
        assert!((0.0..=1.0).contains(&amplitude), "amplitude must be in [0, 1]");
        assert!(!period.is_zero(), "period must be positive");
        DiurnalLoad { base, amplitude, period, phase: 0.0 }
    }

    /// Shifts the pattern by `phase` radians (stagger multiple services).
    #[must_use]
    pub fn with_phase(mut self, phase: f64) -> Self {
        self.phase = phase;
        self
    }
}

impl LoadProfile for DiurnalLoad {
    fn rate_at(&mut self, at: SimTime, _rng: &mut dyn rand::RngCore) -> f64 {
        let x = at.as_secs_f64() / self.period.as_secs_f64();
        let r = self.base
            * (1.0 + self.amplitude * (2.0 * std::f64::consts::PI * x + self.phase).sin());
        r.max(0.0)
    }
    fn max_rate(&self) -> f64 {
        self.base * (1.0 + self.amplitude)
    }
}

/// A linear ramp from `from` to `to` over `duration`, constant afterwards.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RampLoad {
    from: f64,
    to: f64,
    duration: SimDuration,
}

impl RampLoad {
    /// Creates a ramp profile.
    ///
    /// # Panics
    ///
    /// Panics when either rate is negative or `duration` is zero.
    #[must_use]
    pub fn new(from: f64, to: f64, duration: SimDuration) -> Self {
        assert!(from >= 0.0 && to >= 0.0, "rates must be non-negative");
        assert!(!duration.is_zero(), "ramp duration must be positive");
        RampLoad { from, to, duration }
    }
}

impl LoadProfile for RampLoad {
    fn rate_at(&mut self, at: SimTime, _rng: &mut dyn rand::RngCore) -> f64 {
        let frac = (at.as_secs_f64() / self.duration.as_secs_f64()).min(1.0);
        self.from + (self.to - self.from) * frac
    }
    fn max_rate(&self) -> f64 {
        self.from.max(self.to)
    }
}

/// A flash crowd: `base` rate, multiplied by `spike_factor` during
/// `[start, start+duration)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlashCrowdLoad {
    base: f64,
    spike_factor: f64,
    start: SimTime,
    duration: SimDuration,
}

impl FlashCrowdLoad {
    /// Creates a flash-crowd profile.
    ///
    /// # Panics
    ///
    /// Panics when `base < 0` or `spike_factor < 1`.
    #[must_use]
    pub fn new(base: f64, spike_factor: f64, start: SimTime, duration: SimDuration) -> Self {
        assert!(base >= 0.0, "base rate must be non-negative");
        assert!(spike_factor >= 1.0, "spike factor must be at least 1");
        FlashCrowdLoad { base, spike_factor, start, duration }
    }

    /// When the spike begins.
    #[must_use]
    pub fn spike_start(&self) -> SimTime {
        self.start
    }
}

impl LoadProfile for FlashCrowdLoad {
    fn rate_at(&mut self, at: SimTime, _rng: &mut dyn rand::RngCore) -> f64 {
        if at >= self.start && at < self.start + self.duration {
            self.base * self.spike_factor
        } else {
            self.base
        }
    }
    fn max_rate(&self) -> f64 {
        self.base * self.spike_factor
    }
}

/// A two-state Markov-modulated Poisson process (bursty traffic): the rate
/// alternates between `low_rate` and `high_rate`, with exponentially
/// distributed dwell times in each state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MmppLoad {
    low_rate: f64,
    high_rate: f64,
    mean_dwell: SimDuration,
    /// Current state (false = low).
    in_high: bool,
    /// When the current state expires.
    next_switch: SimTime,
}

impl MmppLoad {
    /// Creates a bursty profile alternating between the two rates with
    /// the given mean state dwell time.
    ///
    /// # Panics
    ///
    /// Panics when rates are negative, inverted, or `mean_dwell` is zero.
    #[must_use]
    pub fn new(low_rate: f64, high_rate: f64, mean_dwell: SimDuration) -> Self {
        assert!(low_rate >= 0.0 && high_rate >= low_rate, "need 0 <= low <= high");
        assert!(!mean_dwell.is_zero(), "mean dwell must be positive");
        MmppLoad { low_rate, high_rate, mean_dwell, in_high: false, next_switch: SimTime::ZERO }
    }
}

impl LoadProfile for MmppLoad {
    fn rate_at(&mut self, at: SimTime, rng: &mut dyn rand::RngCore) -> f64 {
        while at >= self.next_switch {
            self.in_high = !self.in_high;
            let dwell = sample_exponential(rng, 1.0 / self.mean_dwell.as_secs_f64());
            self.next_switch += SimDuration::from_secs_f64(dwell.max(1e-3));
        }
        if self.in_high {
            self.high_rate
        } else {
            self.low_rate
        }
    }
    fn max_rate(&self) -> f64 {
        self.high_rate
    }
}

/// Piecewise-constant playback of a recorded `(time, rate)` trace; the
/// last rate persists beyond the trace end.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceLoad {
    points: Vec<(SimTime, f64)>,
}

impl TraceLoad {
    /// Creates a trace profile from time-ordered `(time, rate)` points.
    ///
    /// # Panics
    ///
    /// Panics when the trace is empty, unsorted, or contains negative
    /// rates.
    #[must_use]
    pub fn new(points: Vec<(SimTime, f64)>) -> Self {
        assert!(!points.is_empty(), "trace must not be empty");
        assert!(points.windows(2).all(|w| w[0].0 <= w[1].0), "trace must be time-ordered");
        assert!(points.iter().all(|(_, r)| *r >= 0.0), "trace rates must be non-negative");
        TraceLoad { points }
    }
}

impl LoadProfile for TraceLoad {
    fn rate_at(&mut self, at: SimTime, _rng: &mut dyn rand::RngCore) -> f64 {
        match self.points.partition_point(|(t, _)| *t <= at) {
            0 => self.points[0].1,
            n => self.points[n - 1].1,
        }
    }
    fn max_rate(&self) -> f64 {
        self.points.iter().map(|(_, r)| *r).fold(0.0, f64::max)
    }
}

/// Samples arrival instants from a [`LoadProfile`] by Lewis–Shedler
/// thinning.
///
/// # Examples
///
/// ```
/// use evolve_workload::{ConstantLoad, PoissonArrivals};
/// use evolve_types::SimTime;
/// use rand::SeedableRng;
/// use rand_chacha::ChaCha8Rng;
///
/// let mut arr = PoissonArrivals::new(Box::new(ConstantLoad::new(50.0)));
/// let mut rng = ChaCha8Rng::seed_from_u64(3);
/// let mut t = SimTime::ZERO;
/// let mut count = 0;
/// while let Some(next) = arr.next_after(t, &mut rng) {
///     if next > SimTime::from_secs(10) { break; }
///     t = next;
///     count += 1;
/// }
/// // ~500 arrivals in 10 s at 50 req/s.
/// assert!(count > 400 && count < 600);
/// ```
pub struct PoissonArrivals {
    profile: Box<dyn LoadProfile>,
}

impl std::fmt::Debug for PoissonArrivals {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PoissonArrivals").field("max_rate", &self.profile.max_rate()).finish()
    }
}

impl PoissonArrivals {
    /// Creates a sampler over the given profile.
    #[must_use]
    pub fn new(profile: Box<dyn LoadProfile>) -> Self {
        PoissonArrivals { profile }
    }

    /// The next arrival strictly after `after`, or `None` when the profile
    /// rate is (effectively) zero forever.
    pub fn next_after<R: Rng>(&mut self, after: SimTime, rng: &mut R) -> Option<SimTime> {
        let majorant = self.profile.max_rate();
        if majorant <= 1e-12 {
            return None;
        }
        let mut t = after;
        // Thinning: candidate gaps at the majorant rate, accept with
        // probability rate(t)/majorant.
        for _ in 0..100_000 {
            let gap = sample_exponential(rng, majorant);
            // Clock resolution is 1µs; guarantee strictly increasing times.
            let gap = SimDuration::from_secs_f64(gap).max(SimDuration::from_micros(1));
            t += gap;
            let r = self.profile.rate_at(t, rng);
            if rng.gen::<f64>() * majorant <= r {
                return Some(t);
            }
        }
        None // pathologically low acceptance; treat as silent profile
    }

    /// The profile's instantaneous rate (telemetry/debugging).
    pub fn rate_at<R: Rng>(&mut self, at: SimTime, rng: &mut R) -> f64 {
        self.profile.rate_at(at, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(7)
    }

    fn count_arrivals(profile: Box<dyn LoadProfile>, horizon_secs: u64, seed: u64) -> usize {
        let mut arr = PoissonArrivals::new(profile);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let horizon = SimTime::from_secs(horizon_secs);
        let mut t = SimTime::ZERO;
        let mut n = 0;
        while let Some(next) = arr.next_after(t, &mut rng) {
            if next > horizon {
                break;
            }
            t = next;
            n += 1;
        }
        n
    }

    #[test]
    fn constant_rate_counts_match() {
        let n = count_arrivals(Box::new(ConstantLoad::new(100.0)), 100, 1);
        assert!((9_000..11_000).contains(&n), "arrivals {n}");
    }

    #[test]
    fn zero_rate_produces_nothing() {
        let mut arr = PoissonArrivals::new(Box::new(ConstantLoad::new(0.0)));
        assert_eq!(arr.next_after(SimTime::ZERO, &mut rng()), None);
    }

    #[test]
    fn diurnal_peaks_and_troughs() {
        let mut d = DiurnalLoad::new(100.0, 0.5, SimDuration::from_secs(3600));
        let mut r = rng();
        // Peak at period/4, trough at 3·period/4.
        let peak = d.rate_at(SimTime::from_secs(900), &mut r);
        let trough = d.rate_at(SimTime::from_secs(2700), &mut r);
        assert!((peak - 150.0).abs() < 1.0, "peak {peak}");
        assert!((trough - 50.0).abs() < 1.0, "trough {trough}");
        assert_eq!(d.max_rate(), 150.0);
    }

    #[test]
    fn diurnal_full_amplitude_floors_at_zero() {
        let mut d = DiurnalLoad::new(10.0, 1.0, SimDuration::from_secs(100));
        let mut r = rng();
        let trough = d.rate_at(SimTime::from_secs(75), &mut r);
        assert!(trough.abs() < 1e-9);
    }

    #[test]
    fn ramp_interpolates_then_holds() {
        let mut p = RampLoad::new(10.0, 110.0, SimDuration::from_secs(100));
        let mut r = rng();
        assert_eq!(p.rate_at(SimTime::ZERO, &mut r), 10.0);
        assert!((p.rate_at(SimTime::from_secs(50), &mut r) - 60.0).abs() < 1e-9);
        assert_eq!(p.rate_at(SimTime::from_secs(500), &mut r), 110.0);
    }

    #[test]
    fn flash_crowd_window() {
        let mut p =
            FlashCrowdLoad::new(20.0, 5.0, SimTime::from_secs(100), SimDuration::from_secs(50));
        let mut r = rng();
        assert_eq!(p.rate_at(SimTime::from_secs(99), &mut r), 20.0);
        assert_eq!(p.rate_at(SimTime::from_secs(100), &mut r), 100.0);
        assert_eq!(p.rate_at(SimTime::from_secs(149), &mut r), 100.0);
        assert_eq!(p.rate_at(SimTime::from_secs(150), &mut r), 20.0);
        assert_eq!(p.spike_start(), SimTime::from_secs(100));
    }

    #[test]
    fn mmpp_visits_both_states() {
        let mut p = MmppLoad::new(10.0, 100.0, SimDuration::from_secs(5));
        let mut r = rng();
        let mut seen_low = false;
        let mut seen_high = false;
        for s in 0..200u64 {
            let rate = p.rate_at(SimTime::from_secs(s), &mut r);
            if rate == 10.0 {
                seen_low = true;
            }
            if rate == 100.0 {
                seen_high = true;
            }
        }
        assert!(seen_low && seen_high);
    }

    #[test]
    fn trace_playback_steps() {
        let mut p = TraceLoad::new(vec![
            (SimTime::from_secs(0), 5.0),
            (SimTime::from_secs(10), 50.0),
            (SimTime::from_secs(20), 15.0),
        ]);
        let mut r = rng();
        assert_eq!(p.rate_at(SimTime::from_secs(5), &mut r), 5.0);
        assert_eq!(p.rate_at(SimTime::from_secs(10), &mut r), 50.0);
        assert_eq!(p.rate_at(SimTime::from_secs(99), &mut r), 15.0);
        assert_eq!(p.max_rate(), 50.0);
    }

    #[test]
    fn diurnal_arrival_counts_track_rate() {
        // One full period: total arrivals ≈ base × horizon.
        let n = count_arrivals(
            Box::new(DiurnalLoad::new(50.0, 0.9, SimDuration::from_secs(100))),
            100,
            5,
        );
        assert!((4_000..6_000).contains(&n), "arrivals {n}");
    }

    #[test]
    fn arrivals_are_strictly_increasing() {
        let mut arr = PoissonArrivals::new(Box::new(ConstantLoad::new(1000.0)));
        let mut r = rng();
        let mut t = SimTime::ZERO;
        for _ in 0..1000 {
            let next = arr.next_after(t, &mut r).unwrap();
            assert!(next > t);
            t = next;
        }
    }

    #[test]
    fn deterministic_with_same_seed() {
        let a = count_arrivals(Box::new(ConstantLoad::new(100.0)), 10, 99);
        let b = count_arrivals(Box::new(ConstantLoad::new(100.0)), 10, 99);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "trace must be time-ordered")]
    fn trace_rejects_unsorted() {
        let _ = TraceLoad::new(vec![(SimTime::from_secs(5), 1.0), (SimTime::from_secs(1), 1.0)]);
    }
}
