//! Declarative scenario specifications.
//!
//! [`ScenarioSpec`] is the data model behind every workload scenario: the
//! services with their demand vectors, arrival processes and PLOs, the
//! batch/HPC jobs, the cluster shape, the horizon, and (optionally) an
//! arbiter configuration, a fault plan and a capacity-probe ramp. A spec
//! can be authored as a TOML file (see EXPERIMENTS.md § Authoring
//! scenarios), loaded with [`ScenarioSpec::from_file`], and turned into a
//! runnable [`Scenario`] with [`ScenarioSpec::build`]. The builtin
//! constructors on [`Scenario`] are thin emitters over the specs defined
//! here, and each canonical spec is checked in under `scenarios/*.toml`,
//! pinned byte-identical by parity tests.
//!
//! Parsing never panics: structural problems surface as typed
//! [`ScenarioError`]s with line context, semantic problems (zero demand
//! vectors, allocations no node can host, out-of-range fault targets) as
//! [`ScenarioError::Infeasible`] with a field path.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

use evolve_types::{PriorityClass, ResourceVec, SimDuration, SimTime};

use crate::apps::PloSpec;
use crate::scenario::{LoadSpec, Scenario, WorkloadMix};
use crate::toml_mini::{self, Item, Table, Value};
use crate::{BatchJobSpec, HpcJobSpec, RequestClass, ServiceSpec, StageSpec};

/// The reference node capacity a spec is validated against when
/// `[cluster] node_capacity` is not set. Mirrors the simulator's default
/// node shape (asserted by a cross-crate test in `evolve-core`).
pub const DEFAULT_NODE_CAPACITY: ResourceVec = ResourceVec::new(16_000.0, 65_536.0, 500.0, 1_250.0);

/// Why a scenario file could not be loaded.
///
/// Structural errors ([`Syntax`](ScenarioError::Syntax),
/// [`UnknownField`](ScenarioError::UnknownField),
/// [`InvalidValue`](ScenarioError::InvalidValue)) carry the offending
/// line; semantic errors ([`Infeasible`](ScenarioError::Infeasible))
/// carry the field path (`service[2].load.amplitude`).
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    /// The file could not be read.
    Io {
        /// Path passed to [`ScenarioSpec::from_file`].
        path: String,
        /// Operating-system error description.
        detail: String,
    },
    /// The document is not valid (subset-)TOML.
    Syntax {
        /// 1-based line of the offending construct.
        line: usize,
        /// What went wrong.
        detail: String,
    },
    /// A field the schema does not define.
    UnknownField {
        /// 1-based line where the field is set.
        line: usize,
        /// Table the field appeared in (`scenario`, `service[0]`, …).
        table: String,
        /// The unrecognized key.
        field: String,
    },
    /// A required field is absent.
    MissingField {
        /// Table the field is missing from.
        table: String,
        /// The missing key (alternatives separated by ` | `).
        field: String,
    },
    /// A field holds a value of the wrong type or shape.
    InvalidValue {
        /// 1-based line where the field is set.
        line: usize,
        /// Field path (`service[1].demand`).
        field: String,
        /// What was expected.
        detail: String,
    },
    /// The spec is structurally sound but describes a scenario that can
    /// never run (zero demand, allocations no node can host, fault
    /// targets outside the cluster, …).
    Infeasible {
        /// Field path of the offending value.
        field: String,
        /// Why the scenario cannot run.
        detail: String,
    },
    /// [`ScenarioSpec::builtin`] was asked for a name it does not know.
    UnknownScenario {
        /// The requested name.
        name: String,
    },
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioError::Io { path, detail } => {
                write!(f, "cannot read scenario file `{path}`: {detail}")
            }
            ScenarioError::Syntax { line, detail } => {
                write!(f, "line {line}: {detail}")
            }
            ScenarioError::UnknownField { line, table, field } => {
                write!(f, "line {line}: unknown field `{field}` in `{table}`")
            }
            ScenarioError::MissingField { table, field } => {
                write!(f, "missing required field `{field}` in `{table}`")
            }
            ScenarioError::InvalidValue { line, field, detail } => {
                write!(f, "line {line}: invalid value for `{field}`: {detail}")
            }
            ScenarioError::Infeasible { field, detail } => {
                write!(f, "infeasible scenario: `{field}`: {detail}")
            }
            ScenarioError::UnknownScenario { name } => {
                write!(
                    f,
                    "unknown builtin scenario `{name}` (available: {})",
                    BUILTIN_NAMES.join(", ")
                )
            }
        }
    }
}

impl std::error::Error for ScenarioError {}

/// Cluster shape the scenario is sized for.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterSpec {
    /// Number of worker nodes.
    pub nodes: usize,
    /// Per-node capacity; `None` uses the simulator default
    /// ([`DEFAULT_NODE_CAPACITY`]).
    pub node_capacity: Option<ResourceVec>,
}

/// One latency-critical service: demand distribution, PLO, initial
/// sizing and arrival process.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceEntry {
    /// Service name (unique within the scenario).
    pub name: String,
    /// Request-class label (`cpu-bound`, …), for reports.
    pub class: String,
    /// Mean per-request demand vector.
    pub demand: ResourceVec,
    /// Coefficient of variation of the demand distribution.
    pub demand_cv: f64,
    /// Per-request timeout.
    pub timeout: SimDuration,
    /// The performance objective.
    pub plo: PloSpec,
    /// Initial per-replica allocation.
    pub alloc: ResourceVec,
    /// Initial replica count.
    pub replicas: u32,
    /// Fixed per-replica memory overhead, MiB.
    pub base_memory_mib: f64,
    /// Overload priority class.
    pub priority: PriorityClass,
    /// Arrival process driving the service.
    pub load: LoadSpec,
}

/// One stage of a batch job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageEntry {
    /// Parallel tasks in the stage.
    pub tasks: u32,
    /// Work per task (mcore·s, MiB, MB, MB).
    pub work: ResourceVec,
    /// Records processed per task.
    pub records: u64,
}

/// One staged big-data batch job with its submission time.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchEntry {
    /// Job name.
    pub name: String,
    /// Submission time.
    pub submit_at: SimTime,
    /// Stages executed in order.
    pub stages: Vec<StageEntry>,
    /// The performance objective (deadline or throughput).
    pub plo: PloSpec,
    /// Per-task executor allocation.
    pub task_alloc: ResourceVec,
    /// Maximum tasks in flight.
    pub max_parallel: u32,
    /// Overload priority class.
    pub priority: PriorityClass,
}

/// One gang-scheduled HPC job with its submission time.
#[derive(Debug, Clone, PartialEq)]
pub struct HpcEntry {
    /// Job name.
    pub name: String,
    /// Submission time.
    pub submit_at: SimTime,
    /// Ranks that must run simultaneously.
    pub gang: u32,
    /// Lockstep iterations.
    pub iterations: u32,
    /// Work per rank per iteration.
    pub work: ResourceVec,
    /// Per-rank allocation.
    pub rank_alloc: ResourceVec,
    /// Completion deadline from submission.
    pub deadline: SimDuration,
    /// Overload priority class.
    pub priority: PriorityClass,
}

/// Capacity-arbiter settings, mirroring `evolve_control::ArbiterConfig`
/// field for field (plain data here so `evolve_workload` stays free of a
/// control-plane dependency; `evolve-core` converts).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArbiterSpec {
    /// Fraction of ready capacity held back as reserve.
    pub headroom_fraction: f64,
    /// Grant fraction below which an app counts as starving.
    pub floor_fraction: f64,
    /// Crunch-exit margin.
    pub hysteresis: f64,
    /// Maximum per-tick grant-fraction recovery step.
    pub max_recovery_step: f64,
    /// Demand clamp as a multiple of current actual allocation.
    pub demand_cap_ratio: f64,
}

impl Default for ArbiterSpec {
    fn default() -> Self {
        ArbiterSpec {
            headroom_fraction: 0.10,
            floor_fraction: 0.5,
            hysteresis: 0.10,
            max_recovery_step: 0.25,
            demand_cap_ratio: 2.0,
        }
    }
}

/// A stepwise capacity-probe ramp: offered-load factors from `initial`
/// to `max` in `step` increments, with the knee declared where the
/// service PLO violation rate crosses `threshold`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbeSpec {
    /// First offered-load factor.
    pub initial: f64,
    /// Factor increment per ramp step.
    pub step: f64,
    /// Last offered-load factor.
    pub max: f64,
    /// Service violation rate above which a step is unsustainable.
    pub threshold: f64,
    /// Offered request rate at factor 1.0; `None` derives it from the
    /// spec's service loads ([`ScenarioSpec::offered_rps`]).
    pub reference_rps: Option<f64>,
}

/// One scheduled fault, as plain data (converted to the simulator's
/// fault plan by `evolve-core`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultSpec {
    /// A node crashes at `at`, optionally rejoining after `downtime`.
    NodeCrash {
        /// Index of the node to crash.
        node: usize,
        /// When the crash happens.
        at: SimTime,
        /// Time until the node rejoins; `None` keeps it down.
        downtime: Option<SimDuration>,
    },
    /// Cluster-wide metric scrape blackout.
    ScrapeBlackout {
        /// When the blackout starts.
        at: SimTime,
        /// How long it lasts.
        duration: SimDuration,
    },
    /// The control plane stops ticking.
    ControlStall {
        /// When the stall starts.
        at: SimTime,
        /// How long it lasts.
        duration: SimDuration,
    },
    /// The controller process crashes and recovers per the run config.
    ControllerCrash {
        /// When the crash happens.
        at: SimTime,
    },
    /// Actuations are dropped on the floor.
    ActuationDrop {
        /// When the drop window starts.
        at: SimTime,
        /// How long it lasts.
        duration: SimDuration,
    },
}

/// A declarative scenario: everything a run needs, as data.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Scenario name used in reports.
    pub name: String,
    /// What the scenario exercises.
    pub description: String,
    /// How long to simulate.
    pub horizon: SimDuration,
    /// Cluster shape.
    pub cluster: ClusterSpec,
    /// Latency-critical services.
    pub services: Vec<ServiceEntry>,
    /// Batch jobs.
    pub batch_jobs: Vec<BatchEntry>,
    /// HPC jobs.
    pub hpc_jobs: Vec<HpcEntry>,
    /// Capacity-arbiter settings, when the scenario wants one.
    pub arbiter: Option<ArbiterSpec>,
    /// Scheduled faults.
    pub faults: Vec<FaultSpec>,
    /// Capacity-probe ramp, for scenarios meant for knee discovery.
    pub probe: Option<ProbeSpec>,
}

/// Names accepted by [`ScenarioSpec::builtin`], in canonical order; each
/// has a matching checked-in `scenarios/<name>.toml`.
pub const BUILTIN_NAMES: [&str; 9] = [
    "headline",
    "single_diurnal",
    "flash_crowd",
    "step_response",
    "load_sweep",
    "bottleneck_rotation",
    "overload",
    "cluster_scale",
    "interference",
];

impl ScenarioSpec {
    /// Loads and validates a scenario from a TOML file.
    ///
    /// # Errors
    ///
    /// [`ScenarioError::Io`] when the file cannot be read, otherwise any
    /// error [`ScenarioSpec::from_toml_str`] reports.
    pub fn from_file(path: impl AsRef<Path>) -> Result<ScenarioSpec, ScenarioError> {
        let path = path.as_ref();
        let src = std::fs::read_to_string(path).map_err(|e| ScenarioError::Io {
            path: path.display().to_string(),
            detail: e.to_string(),
        })?;
        ScenarioSpec::from_toml_str(&src)
    }

    /// Parses and validates a scenario from TOML text. Never panics.
    ///
    /// # Errors
    ///
    /// Typed [`ScenarioError`]s for syntax problems, unknown/missing
    /// fields, wrong value types, and infeasible scenarios.
    pub fn from_toml_str(src: &str) -> Result<ScenarioSpec, ScenarioError> {
        let root = toml_mini::parse(src)?;
        let spec = decode_root(&root)?;
        spec.validate()?;
        Ok(spec)
    }

    /// The canonical builtin spec for `name` (see [`BUILTIN_NAMES`]).
    ///
    /// # Errors
    ///
    /// [`ScenarioError::UnknownScenario`] for unrecognized names.
    pub fn builtin(name: &str) -> Result<ScenarioSpec, ScenarioError> {
        Ok(match name {
            "headline" => ScenarioSpec::headline(1.0),
            "single_diurnal" => ScenarioSpec::single_diurnal(),
            "flash_crowd" => ScenarioSpec::flash_crowd(5.0),
            "step_response" => ScenarioSpec::step_response(4.0),
            "load_sweep" => ScenarioSpec::load_sweep(1.0),
            "bottleneck_rotation" => ScenarioSpec::bottleneck_rotation(),
            "overload" => ScenarioSpec::overload(1.0),
            "cluster_scale" => ScenarioSpec::cluster_scale(100, 10, SimDuration::from_mins(2)),
            "interference" => ScenarioSpec::interference(),
            _ => return Err(ScenarioError::UnknownScenario { name: name.to_string() }),
        })
    }

    /// Builds the runnable [`Scenario`] this spec describes. The
    /// cluster/arbiter/fault/probe sections are applied by the run
    /// configuration (`RunConfig::from_spec` in `evolve-core`), not here.
    ///
    /// # Panics
    ///
    /// Panics when a hand-constructed spec violates the invariants
    /// [`ScenarioSpec::validate`] checks; file-loaded specs are always
    /// validated first.
    #[must_use]
    pub fn build(&self) -> Scenario {
        let mut mix = WorkloadMix::new();
        for s in &self.services {
            mix = mix.with_service(
                ServiceSpec::new(
                    s.name.clone(),
                    s.plo,
                    RequestClass::new(s.class.clone(), s.demand, s.demand_cv, s.timeout),
                    s.alloc,
                )
                .with_initial_replicas(s.replicas)
                .with_base_memory(s.base_memory_mib)
                .with_priority(s.priority),
                s.load.clone(),
            );
        }
        for b in &self.batch_jobs {
            let stages =
                b.stages.iter().map(|st| StageSpec::new(st.tasks, st.work, st.records)).collect();
            mix = mix.with_batch_job(
                BatchJobSpec::new(b.name.clone(), stages, b.plo, b.task_alloc, b.max_parallel)
                    .with_priority(b.priority),
                b.submit_at,
            );
        }
        for h in &self.hpc_jobs {
            mix = mix.with_hpc_job(
                HpcJobSpec::new(
                    h.name.clone(),
                    h.gang,
                    h.iterations,
                    h.work,
                    h.rank_alloc,
                    h.deadline,
                )
                .with_priority(h.priority),
                h.submit_at,
            );
        }
        Scenario {
            name: self.name.clone(),
            description: self.description.clone(),
            mix,
            horizon: self.horizon,
        }
    }

    /// A copy with every service arrival rate multiplied by `factor`
    /// (name, jobs and PLOs unchanged) — the capacity-probe ramp step.
    ///
    /// # Panics
    ///
    /// Panics when `factor` is not positive and finite.
    #[must_use]
    pub fn scaled_loads(&self, factor: f64) -> ScenarioSpec {
        assert!(factor.is_finite() && factor > 0.0, "scale factor must be positive");
        let mut out = self.clone();
        for s in &mut out.services {
            s.load = s.load.scaled(factor);
        }
        out
    }

    /// Total mean offered request rate across services (rps).
    #[must_use]
    pub fn offered_rps(&self) -> f64 {
        self.services.iter().map(|s| s.load.mean_rate()).sum()
    }

    /// The node capacity this spec is validated against.
    #[must_use]
    pub fn node_capacity(&self) -> ResourceVec {
        self.cluster.node_capacity.unwrap_or(DEFAULT_NODE_CAPACITY)
    }

    /// Checks the semantic invariants [`ScenarioSpec::build`] (and the
    /// downstream spec constructors) rely on.
    ///
    /// # Errors
    ///
    /// [`ScenarioError::Infeasible`] with the offending field path.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        let cap = self.node_capacity();
        if self.name.is_empty() {
            return Err(infeasible("name", "scenario name must not be empty"));
        }
        if self.horizon.is_zero() {
            return Err(infeasible("horizon_secs", "horizon must be positive"));
        }
        if self.cluster.nodes == 0 {
            return Err(infeasible("cluster.nodes", "cluster needs at least one node"));
        }
        if let Some(nc) = self.cluster.node_capacity {
            if !nc.is_valid() || nc.is_zero() {
                return Err(infeasible(
                    "cluster.node_capacity",
                    "node capacity must be finite, non-negative and non-zero",
                ));
            }
        }
        if self.services.is_empty() && self.batch_jobs.is_empty() && self.hpc_jobs.is_empty() {
            return Err(infeasible("scenario", "declares no services, batch jobs or HPC jobs"));
        }
        for (i, s) in self.services.iter().enumerate() {
            let at = |k: &str| format!("service[{i}].{k}");
            if s.name.is_empty() {
                return Err(infeasible(&at("name"), "service name must not be empty"));
            }
            if s.class.is_empty() {
                return Err(infeasible(&at("class"), "request-class label must not be empty"));
            }
            if !s.demand.is_valid() || s.demand.is_zero() {
                return Err(infeasible(
                    &at("demand"),
                    "per-request demand must be finite, non-negative and non-zero",
                ));
            }
            if !(s.demand_cv.is_finite() && s.demand_cv >= 0.0) {
                return Err(infeasible(&at("demand_cv"), "must be finite and non-negative"));
            }
            if s.timeout.is_zero() {
                return Err(infeasible(&at("timeout_secs"), "timeout must be positive"));
            }
            check_plo(&at("plo"), &s.plo)?;
            check_alloc(&at("alloc"), &s.alloc, &cap)?;
            if s.replicas == 0 {
                return Err(infeasible(&at("replicas"), "must be at least 1"));
            }
            if !(s.base_memory_mib.is_finite() && s.base_memory_mib >= 0.0) {
                return Err(infeasible(&at("base_memory_mib"), "must be finite and non-negative"));
            }
            check_load(&at("load"), &s.load)?;
        }
        for (j, b) in self.batch_jobs.iter().enumerate() {
            let at = |k: &str| format!("batch[{j}].{k}");
            if b.name.is_empty() {
                return Err(infeasible(&at("name"), "job name must not be empty"));
            }
            if b.stages.is_empty() {
                return Err(infeasible(&at("stage"), "batch job needs at least one stage"));
            }
            for (k, st) in b.stages.iter().enumerate() {
                let at = |f: &str| format!("batch[{j}].stage[{k}].{f}");
                if st.tasks == 0 {
                    return Err(infeasible(&at("tasks"), "stage needs at least one task"));
                }
                if !st.work.is_valid() || st.work.is_zero() {
                    return Err(infeasible(
                        &at("work"),
                        "per-task work must be finite, non-negative and non-zero",
                    ));
                }
            }
            check_plo(&at("plo"), &b.plo)?;
            check_alloc(&at("task_alloc"), &b.task_alloc, &cap)?;
            if b.max_parallel == 0 {
                return Err(infeasible(&at("max_parallel"), "must be at least 1"));
            }
        }
        for (k, h) in self.hpc_jobs.iter().enumerate() {
            let at = |f: &str| format!("hpc[{k}].{f}");
            if h.name.is_empty() {
                return Err(infeasible(&at("name"), "job name must not be empty"));
            }
            if h.gang == 0 {
                return Err(infeasible(&at("gang"), "gang size must be at least 1"));
            }
            if h.iterations == 0 {
                return Err(infeasible(&at("iterations"), "must be at least 1"));
            }
            if !h.work.is_valid() {
                return Err(infeasible(&at("work"), "must be finite and non-negative"));
            }
            check_alloc(&at("rank_alloc"), &h.rank_alloc, &cap)?;
            if h.deadline.is_zero() {
                return Err(infeasible(&at("deadline_secs"), "deadline must be positive"));
            }
        }
        if let Some(a) = &self.arbiter {
            let frac = |k: &str, v: f64, hi: f64| -> Result<(), ScenarioError> {
                if v.is_finite() && (0.0..hi).contains(&v) {
                    Ok(())
                } else {
                    Err(infeasible(&format!("arbiter.{k}"), "must be a fraction in [0, 1)"))
                }
            };
            frac("headroom_fraction", a.headroom_fraction, 1.0)?;
            frac("hysteresis", a.hysteresis, 1.0)?;
            if !(a.floor_fraction.is_finite() && (0.0..=1.0).contains(&a.floor_fraction)) {
                return Err(infeasible("arbiter.floor_fraction", "must be in [0, 1]"));
            }
            if !(a.max_recovery_step.is_finite() && a.max_recovery_step > 0.0) {
                return Err(infeasible("arbiter.max_recovery_step", "must be positive"));
            }
            if !(a.demand_cap_ratio.is_finite() && a.demand_cap_ratio >= 1.0) {
                return Err(infeasible("arbiter.demand_cap_ratio", "must be at least 1"));
            }
        }
        if let Some(p) = &self.probe {
            if !(p.initial.is_finite() && p.initial > 0.0) {
                return Err(infeasible("probe.initial", "must be positive"));
            }
            if !(p.step.is_finite() && p.step > 0.0) {
                return Err(infeasible("probe.step", "must be positive"));
            }
            if !(p.max.is_finite() && p.max >= p.initial) {
                return Err(infeasible("probe.max", "must be at least `probe.initial`"));
            }
            if !(p.threshold.is_finite() && p.threshold > 0.0 && p.threshold < 1.0) {
                return Err(infeasible("probe.threshold", "must be in (0, 1)"));
            }
            if let Some(r) = p.reference_rps {
                if !(r.is_finite() && r > 0.0) {
                    return Err(infeasible("probe.reference_rps", "must be positive"));
                }
            }
        }
        for (i, fault) in self.faults.iter().enumerate() {
            let at = |k: &str| format!("fault[{i}].{k}");
            match fault {
                FaultSpec::NodeCrash { node, downtime, .. } => {
                    if *node >= self.cluster.nodes {
                        return Err(infeasible(
                            &at("node"),
                            &format!(
                                "node index {node} is outside the {}-node cluster",
                                self.cluster.nodes
                            ),
                        ));
                    }
                    if let Some(d) = downtime {
                        if d.is_zero() {
                            return Err(infeasible(&at("downtime_secs"), "must be positive"));
                        }
                    }
                }
                FaultSpec::ScrapeBlackout { duration, .. }
                | FaultSpec::ControlStall { duration, .. }
                | FaultSpec::ActuationDrop { duration, .. } => {
                    if duration.is_zero() {
                        return Err(infeasible(&at("duration_secs"), "must be positive"));
                    }
                }
                FaultSpec::ControllerCrash { .. } => {}
            }
        }
        Ok(())
    }
}

fn infeasible(field: &str, detail: &str) -> ScenarioError {
    ScenarioError::Infeasible { field: field.to_string(), detail: detail.to_string() }
}

fn check_plo(field: &str, plo: &PloSpec) -> Result<(), ScenarioError> {
    if plo.target().is_finite() && plo.target() > 0.0 {
        Ok(())
    } else {
        Err(infeasible(field, "PLO target must be positive and finite"))
    }
}

fn check_alloc(field: &str, alloc: &ResourceVec, cap: &ResourceVec) -> Result<(), ScenarioError> {
    if !alloc.is_valid() {
        return Err(infeasible(field, "allocation must be finite and non-negative"));
    }
    if !alloc.fits_within(cap) {
        return Err(ScenarioError::Infeasible {
            field: field.to_string(),
            detail: format!(
                "per-pod allocation {alloc} exceeds node capacity {cap}; no node can ever host it"
            ),
        });
    }
    Ok(())
}

fn check_load(field: &str, load: &LoadSpec) -> Result<(), ScenarioError> {
    let at = |k: &str| format!("{field}.{k}");
    let nonneg = |k: &str, v: f64| -> Result<(), ScenarioError> {
        if v.is_finite() && v >= 0.0 {
            Ok(())
        } else {
            Err(infeasible(&at(k), "must be finite and non-negative"))
        }
    };
    match load {
        LoadSpec::Constant { rate } => nonneg("rate", *rate),
        LoadSpec::Diurnal { base, amplitude, period, phase } => {
            nonneg("base", *base)?;
            if !(amplitude.is_finite() && (0.0..=1.0).contains(amplitude)) {
                return Err(infeasible(&at("amplitude"), "must be in [0, 1]"));
            }
            if period.is_zero() {
                return Err(infeasible(&at("period_secs"), "must be positive"));
            }
            if !phase.is_finite() {
                return Err(infeasible(&at("phase"), "must be finite"));
            }
            Ok(())
        }
        LoadSpec::Ramp { from, to, duration } => {
            nonneg("from", *from)?;
            nonneg("to", *to)?;
            if duration.is_zero() {
                return Err(infeasible(&at("duration_secs"), "must be positive"));
            }
            Ok(())
        }
        LoadSpec::FlashCrowd { base, spike_factor, duration, .. } => {
            nonneg("base", *base)?;
            if !(spike_factor.is_finite() && *spike_factor >= 1.0) {
                return Err(infeasible(&at("spike_factor"), "must be at least 1"));
            }
            if duration.is_zero() {
                return Err(infeasible(&at("duration_secs"), "must be positive"));
            }
            Ok(())
        }
        LoadSpec::Mmpp { low, high, mean_dwell } => {
            nonneg("low", *low)?;
            if !(high.is_finite() && high >= low) {
                return Err(infeasible(&at("high"), "must be at least `low`"));
            }
            if mean_dwell.is_zero() {
                return Err(infeasible(&at("mean_dwell_secs"), "must be positive"));
            }
            Ok(())
        }
        LoadSpec::Trace { points } => {
            if points.is_empty() {
                return Err(infeasible(&at("points"), "trace needs at least one point"));
            }
            for w in points.windows(2) {
                if w[1].0 < w[0].0 {
                    return Err(infeasible(&at("points"), "points must be time-ordered"));
                }
            }
            for (_, r) in points {
                nonneg("points", *r)?;
            }
            Ok(())
        }
    }
}

// ---------------------------------------------------------------------------
// TOML decoding
// ---------------------------------------------------------------------------

/// Tracks which keys of a table have been consumed so leftovers can be
/// reported as [`ScenarioError::UnknownField`].
struct Fields<'a> {
    ctx: String,
    map: BTreeMap<&'a str, (usize, &'a Item)>,
}

impl<'a> Fields<'a> {
    fn new(table: &'a Table, ctx: impl Into<String>) -> Fields<'a> {
        Fields {
            ctx: ctx.into(),
            map: table.entries.iter().map(|(k, (l, i))| (k.as_str(), (*l, i))).collect(),
        }
    }

    fn path(&self, key: &str) -> String {
        format!("{}.{key}", self.ctx)
    }

    fn take(&mut self, key: &str) -> Option<(usize, &'a Item)> {
        self.map.remove(key)
    }

    fn invalid(&self, line: usize, key: &str, detail: impl Into<String>) -> ScenarioError {
        ScenarioError::InvalidValue { line, field: self.path(key), detail: detail.into() }
    }

    fn missing(&self, key: &str) -> ScenarioError {
        ScenarioError::MissingField { table: self.ctx.clone(), field: key.to_string() }
    }

    /// Errors on the first (alphabetically) unconsumed key.
    fn finish(self) -> Result<(), ScenarioError> {
        if let Some((field, (line, _))) = self.map.into_iter().next() {
            return Err(ScenarioError::UnknownField {
                line,
                table: self.ctx,
                field: field.to_string(),
            });
        }
        Ok(())
    }

    fn opt_str(&mut self, key: &str) -> Result<Option<String>, ScenarioError> {
        match self.take(key) {
            None => Ok(None),
            Some((_, Item::Value(Value::Str(s)))) => Ok(Some(s.clone())),
            Some((line, item)) => {
                Err(self.invalid(line, key, format!("expected a string, got {}", item.type_name())))
            }
        }
    }

    fn req_str(&mut self, key: &str) -> Result<String, ScenarioError> {
        self.opt_str(key)?.ok_or_else(|| self.missing(key))
    }

    fn opt_f64(&mut self, key: &str) -> Result<Option<(usize, f64)>, ScenarioError> {
        match self.take(key) {
            None => Ok(None),
            Some((line, Item::Value(v))) => Ok(Some((
                line,
                num(v).ok_or_else(|| {
                    self.invalid(line, key, format!("expected a number, got {}", v.type_name()))
                })?,
            ))),
            Some((line, item)) => {
                Err(self.invalid(line, key, format!("expected a number, got {}", item.type_name())))
            }
        }
    }

    fn req_f64(&mut self, key: &str) -> Result<f64, ScenarioError> {
        Ok(self.opt_f64(key)?.ok_or_else(|| self.missing(key))?.1)
    }

    fn opt_int(&mut self, key: &str, max: u64) -> Result<Option<u64>, ScenarioError> {
        match self.take(key) {
            None => Ok(None),
            Some((line, Item::Value(Value::Int(i)))) => {
                if *i < 0 || u64::try_from(*i).is_ok_and(|u| u > max) {
                    return Err(self.invalid(
                        line,
                        key,
                        format!("expected an integer in 0..={max}"),
                    ));
                }
                Ok(Some(*i as u64))
            }
            Some((line, item)) => Err(self.invalid(
                line,
                key,
                format!("expected an integer, got {}", item.type_name()),
            )),
        }
    }

    fn req_u32(&mut self, key: &str) -> Result<u32, ScenarioError> {
        let v = self.opt_int(key, u64::from(u32::MAX))?.ok_or_else(|| self.missing(key))?;
        Ok(v as u32)
    }

    fn opt_u32(&mut self, key: &str) -> Result<Option<u32>, ScenarioError> {
        Ok(self.opt_int(key, u64::from(u32::MAX))?.map(|v| v as u32))
    }

    fn req_u64(&mut self, key: &str) -> Result<u64, ScenarioError> {
        self.opt_int(key, u64::MAX)?.ok_or_else(|| self.missing(key))
    }

    fn req_usize(&mut self, key: &str) -> Result<usize, ScenarioError> {
        Ok(self
            .opt_int(key, u64::try_from(usize::MAX).unwrap_or(u64::MAX))?
            .ok_or_else(|| self.missing(key))? as usize)
    }

    fn opt_vec4(&mut self, key: &str) -> Result<Option<ResourceVec>, ScenarioError> {
        match self.take(key) {
            None => Ok(None),
            Some((line, Item::Value(Value::Array(items)))) => {
                if items.len() != 4 {
                    return Err(self.invalid(
                        line,
                        key,
                        format!("expected 4 numbers [cpu, mem, disk, net], got {}", items.len()),
                    ));
                }
                let mut out = [0.0; 4];
                for (slot, item) in out.iter_mut().zip(items) {
                    *slot = num(item).ok_or_else(|| {
                        self.invalid(line, key, "expected 4 numbers [cpu, mem, disk, net]")
                    })?;
                }
                Ok(Some(ResourceVec::new(out[0], out[1], out[2], out[3])))
            }
            Some((line, item)) => Err(self.invalid(
                line,
                key,
                format!("expected an array of 4 numbers, got {}", item.type_name()),
            )),
        }
    }

    fn req_vec4(&mut self, key: &str) -> Result<ResourceVec, ScenarioError> {
        self.opt_vec4(key)?.ok_or_else(|| self.missing(key))
    }

    /// Seconds as a duration; emitted/accepted as a float field.
    fn req_secs(&mut self, key: &str) -> Result<SimDuration, ScenarioError> {
        let (line, v) = self.opt_f64(key)?.ok_or_else(|| self.missing(key))?;
        if !(v.is_finite() && v >= 0.0) {
            return Err(self.invalid(line, key, "expected a non-negative number of seconds"));
        }
        Ok(SimDuration::from_secs_f64(v))
    }

    fn opt_secs(&mut self, key: &str) -> Result<Option<SimDuration>, ScenarioError> {
        match self.opt_f64(key)? {
            None => Ok(None),
            Some((line, v)) => {
                if !(v.is_finite() && v >= 0.0) {
                    return Err(self.invalid(
                        line,
                        key,
                        "expected a non-negative number of seconds",
                    ));
                }
                Ok(Some(SimDuration::from_secs_f64(v)))
            }
        }
    }

    fn req_time(&mut self, key: &str) -> Result<SimTime, ScenarioError> {
        Ok(SimTime::ZERO + self.req_secs(key)?)
    }

    fn opt_priority(&mut self, key: &str) -> Result<PriorityClass, ScenarioError> {
        match self.opt_str(key)? {
            None => Ok(PriorityClass::default()),
            Some(s) => match s.as_str() {
                "critical" => Ok(PriorityClass::Critical),
                "standard" => Ok(PriorityClass::Standard),
                "preemptible" => Ok(PriorityClass::Preemptible),
                other => Err(ScenarioError::InvalidValue {
                    line: 0,
                    field: self.path(key),
                    detail: format!(
                        "unknown priority `{other}` (expected critical, standard or preemptible)"
                    ),
                }),
            },
        }
    }

    fn opt_table(&mut self, key: &str) -> Result<Option<&'a Table>, ScenarioError> {
        match self.take(key) {
            None => Ok(None),
            Some((_, Item::Table(t))) => Ok(Some(t)),
            Some((line, item)) => Err(self.invalid(
                line,
                key,
                format!("expected a `[{key}]` table, got {}", item.type_name()),
            )),
        }
    }

    /// A `[[key]]` array of tables; a single `[key]` table counts as one
    /// element.
    fn opt_tables(&mut self, key: &str) -> Result<Vec<&'a Table>, ScenarioError> {
        match self.take(key) {
            None => Ok(Vec::new()),
            Some((_, Item::TableArray(v))) => Ok(v.iter().collect()),
            Some((_, Item::Table(t))) => Ok(vec![t]),
            Some((line, item)) => Err(self.invalid(
                line,
                key,
                format!("expected `[[{key}]]` tables, got {}", item.type_name()),
            )),
        }
    }
}

fn num(v: &Value) -> Option<f64> {
    match v {
        Value::Float(f) => Some(*f),
        Value::Int(i) => Some(*i as f64),
        _ => None,
    }
}

/// Exactly one of the four PLO fields must be present.
fn decode_plo(f: &mut Fields<'_>) -> Result<PloSpec, ScenarioError> {
    let mut found: Vec<(usize, &'static str, PloSpec)> = Vec::new();
    if let Some((line, v)) = f.opt_f64("plo_p99_ms")? {
        found.push((line, "plo_p99_ms", PloSpec::LatencyP99 { target_ms: v }));
    }
    if let Some((line, v)) = f.opt_f64("plo_mean_ms")? {
        found.push((line, "plo_mean_ms", PloSpec::LatencyMean { target_ms: v }));
    }
    if let Some((line, v)) = f.opt_f64("plo_throughput_rps")? {
        found.push((line, "plo_throughput_rps", PloSpec::Throughput { target_rps: v }));
    }
    if let Some((line, v)) = f.opt_f64("plo_deadline_secs")? {
        if !(v.is_finite() && v > 0.0) {
            return Err(f.invalid(line, "plo_deadline_secs", "expected a positive number"));
        }
        found.push((
            line,
            "plo_deadline_secs",
            PloSpec::Deadline { deadline: SimDuration::from_secs_f64(v) },
        ));
    }
    match found.len() {
        0 => Err(f.missing("plo_p99_ms | plo_mean_ms | plo_throughput_rps | plo_deadline_secs")),
        1 => Ok(found.remove(0).2),
        _ => {
            let (line, key, _) = found[1];
            Err(f.invalid(line, key, "more than one PLO field; specify exactly one"))
        }
    }
}

fn decode_load(table: &Table, ctx: String) -> Result<LoadSpec, ScenarioError> {
    let mut f = Fields::new(table, ctx);
    let kind = f.req_str("kind")?;
    let load = match kind.as_str() {
        "constant" => LoadSpec::Constant { rate: f.req_f64("rate")? },
        "diurnal" => LoadSpec::Diurnal {
            base: f.req_f64("base")?,
            amplitude: f.req_f64("amplitude")?,
            period: f.req_secs("period_secs")?,
            phase: f.req_f64("phase")?,
        },
        "ramp" => LoadSpec::Ramp {
            from: f.req_f64("from")?,
            to: f.req_f64("to")?,
            duration: f.req_secs("duration_secs")?,
        },
        "flash_crowd" => LoadSpec::FlashCrowd {
            base: f.req_f64("base")?,
            spike_factor: f.req_f64("spike_factor")?,
            start: f.req_time("start_secs")?,
            duration: f.req_secs("duration_secs")?,
        },
        "mmpp" => LoadSpec::Mmpp {
            low: f.req_f64("low")?,
            high: f.req_f64("high")?,
            mean_dwell: f.req_secs("mean_dwell_secs")?,
        },
        "trace" => {
            let Some((line, item)) = f.take("points") else {
                return Err(f.missing("points"));
            };
            let Item::Value(Value::Array(raw)) = item else {
                return Err(f.invalid(line, "points", "expected an array of [secs, rate] pairs"));
            };
            let mut points = Vec::with_capacity(raw.len());
            for p in raw {
                let Value::Array(pair) = p else {
                    return Err(f.invalid(line, "points", "expected [secs, rate] pairs"));
                };
                let (Some(t), Some(r)) = (pair.first().and_then(num), pair.get(1).and_then(num))
                else {
                    return Err(f.invalid(line, "points", "expected [secs, rate] pairs"));
                };
                if pair.len() != 2 || !(t.is_finite() && t >= 0.0) {
                    return Err(f.invalid(line, "points", "expected [secs, rate] pairs"));
                }
                points.push((SimTime::ZERO + SimDuration::from_secs_f64(t), r));
            }
            LoadSpec::Trace { points }
        }
        other => {
            return Err(ScenarioError::InvalidValue {
                line: table.line,
                field: f.path("kind"),
                detail: format!(
                    "unknown load kind `{other}` (expected constant, diurnal, ramp, \
                     flash_crowd, mmpp or trace)"
                ),
            });
        }
    };
    f.finish()?;
    Ok(load)
}

fn decode_service(table: &Table, idx: usize) -> Result<ServiceEntry, ScenarioError> {
    let ctx = format!("service[{idx}]");
    let mut f = Fields::new(table, ctx.clone());
    let entry = ServiceEntry {
        name: f.req_str("name")?,
        class: f.req_str("class")?,
        demand: f.req_vec4("demand")?,
        demand_cv: f.req_f64("demand_cv")?,
        timeout: f.req_secs("timeout_secs")?,
        plo: decode_plo(&mut f)?,
        alloc: f.req_vec4("alloc")?,
        replicas: f.opt_u32("replicas")?.unwrap_or(1),
        base_memory_mib: f.opt_f64("base_memory_mib")?.map_or(64.0, |(_, v)| v),
        priority: f.opt_priority("priority")?,
        load: {
            let t = f.opt_table("load")?.ok_or_else(|| f.missing("load"))?;
            decode_load(t, format!("{ctx}.load"))?
        },
    };
    f.finish()?;
    Ok(entry)
}

fn decode_batch(table: &Table, idx: usize) -> Result<BatchEntry, ScenarioError> {
    let ctx = format!("batch[{idx}]");
    let mut f = Fields::new(table, ctx.clone());
    let stages = f
        .opt_tables("stage")?
        .into_iter()
        .enumerate()
        .map(|(k, t)| {
            let mut sf = Fields::new(t, format!("{ctx}.stage[{k}]"));
            let stage = StageEntry {
                tasks: sf.req_u32("tasks")?,
                work: sf.req_vec4("work")?,
                records: sf.req_u64("records")?,
            };
            sf.finish()?;
            Ok(stage)
        })
        .collect::<Result<Vec<_>, ScenarioError>>()?;
    if stages.is_empty() {
        return Err(f.missing("stage"));
    }
    let entry = BatchEntry {
        name: f.req_str("name")?,
        submit_at: f.req_time("submit_secs")?,
        stages,
        plo: decode_plo(&mut f)?,
        task_alloc: f.req_vec4("task_alloc")?,
        max_parallel: f.req_u32("max_parallel")?,
        priority: f.opt_priority("priority")?,
    };
    f.finish()?;
    Ok(entry)
}

fn decode_hpc(table: &Table, idx: usize) -> Result<HpcEntry, ScenarioError> {
    let mut f = Fields::new(table, format!("hpc[{idx}]"));
    let entry = HpcEntry {
        name: f.req_str("name")?,
        submit_at: f.req_time("submit_secs")?,
        gang: f.req_u32("gang")?,
        iterations: f.req_u32("iterations")?,
        work: f.req_vec4("work")?,
        rank_alloc: f.req_vec4("rank_alloc")?,
        deadline: f.req_secs("deadline_secs")?,
        priority: f.opt_priority("priority")?,
    };
    f.finish()?;
    Ok(entry)
}

fn decode_fault(table: &Table, idx: usize) -> Result<FaultSpec, ScenarioError> {
    let ctx = format!("fault[{idx}]");
    let mut f = Fields::new(table, ctx.clone());
    let kind = f.req_str("kind")?;
    let at = SimTime::ZERO + f.req_secs("at_secs")?;
    let fault = match kind.as_str() {
        "node_crash" => FaultSpec::NodeCrash {
            node: f.req_usize("node")?,
            at,
            downtime: f.opt_secs("downtime_secs")?,
        },
        "scrape_blackout" => {
            FaultSpec::ScrapeBlackout { at, duration: f.req_secs("duration_secs")? }
        }
        "control_stall" => FaultSpec::ControlStall { at, duration: f.req_secs("duration_secs")? },
        "controller_crash" => FaultSpec::ControllerCrash { at },
        "actuation_drop" => FaultSpec::ActuationDrop { at, duration: f.req_secs("duration_secs")? },
        other => {
            return Err(ScenarioError::InvalidValue {
                line: table.line,
                field: format!("{ctx}.kind"),
                detail: format!(
                    "unknown fault kind `{other}` (expected node_crash, scrape_blackout, \
                     control_stall, controller_crash or actuation_drop)"
                ),
            });
        }
    };
    f.finish()?;
    Ok(fault)
}

fn decode_root(root: &Table) -> Result<ScenarioSpec, ScenarioError> {
    let mut f = Fields::new(root, "scenario");
    let cluster = match f.opt_table("cluster")? {
        None => ClusterSpec { nodes: 20, node_capacity: None },
        Some(t) => {
            let mut cf = Fields::new(t, "cluster");
            let cluster = ClusterSpec {
                nodes: cf.req_usize("nodes")?,
                node_capacity: cf.opt_vec4("node_capacity")?,
            };
            cf.finish()?;
            cluster
        }
    };
    let arbiter = match f.opt_table("arbiter")? {
        None => None,
        Some(t) => {
            let mut af = Fields::new(t, "arbiter");
            let d = ArbiterSpec::default();
            let spec = ArbiterSpec {
                headroom_fraction: af
                    .opt_f64("headroom_fraction")?
                    .map_or(d.headroom_fraction, |(_, v)| v),
                floor_fraction: af.opt_f64("floor_fraction")?.map_or(d.floor_fraction, |(_, v)| v),
                hysteresis: af.opt_f64("hysteresis")?.map_or(d.hysteresis, |(_, v)| v),
                max_recovery_step: af
                    .opt_f64("max_recovery_step")?
                    .map_or(d.max_recovery_step, |(_, v)| v),
                demand_cap_ratio: af
                    .opt_f64("demand_cap_ratio")?
                    .map_or(d.demand_cap_ratio, |(_, v)| v),
            };
            af.finish()?;
            Some(spec)
        }
    };
    let probe = match f.opt_table("probe")? {
        None => None,
        Some(t) => {
            let mut pf = Fields::new(t, "probe");
            let spec = ProbeSpec {
                initial: pf.req_f64("initial")?,
                step: pf.req_f64("step")?,
                max: pf.req_f64("max")?,
                threshold: pf.opt_f64("threshold")?.map_or(0.10, |(_, v)| v),
                reference_rps: pf.opt_f64("reference_rps")?.map(|(_, v)| v),
            };
            pf.finish()?;
            Some(spec)
        }
    };
    let services = f
        .opt_tables("service")?
        .into_iter()
        .enumerate()
        .map(|(i, t)| decode_service(t, i))
        .collect::<Result<Vec<_>, _>>()?;
    let batch_jobs = f
        .opt_tables("batch")?
        .into_iter()
        .enumerate()
        .map(|(i, t)| decode_batch(t, i))
        .collect::<Result<Vec<_>, _>>()?;
    let hpc_jobs = f
        .opt_tables("hpc")?
        .into_iter()
        .enumerate()
        .map(|(i, t)| decode_hpc(t, i))
        .collect::<Result<Vec<_>, _>>()?;
    let faults = f
        .opt_tables("fault")?
        .into_iter()
        .enumerate()
        .map(|(i, t)| decode_fault(t, i))
        .collect::<Result<Vec<_>, _>>()?;
    let spec = ScenarioSpec {
        name: f.req_str("name")?,
        description: f.opt_str("description")?.unwrap_or_default(),
        horizon: f.req_secs("horizon_secs")?,
        cluster,
        services,
        batch_jobs,
        hpc_jobs,
        arbiter,
        faults,
        probe,
    };
    f.finish()?;
    Ok(spec)
}

// ---------------------------------------------------------------------------
// TOML emission
// ---------------------------------------------------------------------------

/// Shortest round-trip float formatting (`200` emits as `200.0`), so an
/// emitted file parses back to bit-identical values.
fn fmt_f64(v: f64) -> String {
    format!("{v:?}")
}

fn fmt_secs(d: SimDuration) -> String {
    fmt_f64(d.as_secs_f64())
}

fn fmt_vec4(v: &ResourceVec) -> String {
    let a = v.as_array();
    format!("[{}, {}, {}, {}]", fmt_f64(a[0]), fmt_f64(a[1]), fmt_f64(a[2]), fmt_f64(a[3]))
}

fn fmt_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn emit_plo(out: &mut String, plo: &PloSpec) {
    let line = match plo {
        PloSpec::LatencyP99 { target_ms } => format!("plo_p99_ms = {}", fmt_f64(*target_ms)),
        PloSpec::LatencyMean { target_ms } => format!("plo_mean_ms = {}", fmt_f64(*target_ms)),
        PloSpec::Throughput { target_rps } => {
            format!("plo_throughput_rps = {}", fmt_f64(*target_rps))
        }
        PloSpec::Deadline { deadline } => format!("plo_deadline_secs = {}", fmt_secs(*deadline)),
    };
    let _ = writeln!(out, "{line}");
}

fn emit_priority(out: &mut String, priority: PriorityClass) {
    if priority != PriorityClass::Standard {
        let _ = writeln!(out, "priority = {}", fmt_str(priority.as_str()));
    }
}

fn emit_load(out: &mut String, load: &LoadSpec) {
    let _ = writeln!(out, "\n[service.load]");
    match load {
        LoadSpec::Constant { rate } => {
            let _ = writeln!(out, "kind = \"constant\"\nrate = {}", fmt_f64(*rate));
        }
        LoadSpec::Diurnal { base, amplitude, period, phase } => {
            let _ = writeln!(
                out,
                "kind = \"diurnal\"\nbase = {}\namplitude = {}\nperiod_secs = {}\nphase = {}",
                fmt_f64(*base),
                fmt_f64(*amplitude),
                fmt_secs(*period),
                fmt_f64(*phase)
            );
        }
        LoadSpec::Ramp { from, to, duration } => {
            let _ = writeln!(
                out,
                "kind = \"ramp\"\nfrom = {}\nto = {}\nduration_secs = {}",
                fmt_f64(*from),
                fmt_f64(*to),
                fmt_secs(*duration)
            );
        }
        LoadSpec::FlashCrowd { base, spike_factor, start, duration } => {
            let _ = writeln!(
                out,
                "kind = \"flash_crowd\"\nbase = {}\nspike_factor = {}\nstart_secs = {}\n\
                 duration_secs = {}",
                fmt_f64(*base),
                fmt_f64(*spike_factor),
                fmt_f64(start.as_secs_f64()),
                fmt_secs(*duration)
            );
        }
        LoadSpec::Mmpp { low, high, mean_dwell } => {
            let _ = writeln!(
                out,
                "kind = \"mmpp\"\nlow = {}\nhigh = {}\nmean_dwell_secs = {}",
                fmt_f64(*low),
                fmt_f64(*high),
                fmt_secs(*mean_dwell)
            );
        }
        LoadSpec::Trace { points } => {
            let pts: Vec<String> = points
                .iter()
                .map(|(t, r)| format!("[{}, {}]", fmt_f64(t.as_secs_f64()), fmt_f64(*r)))
                .collect();
            let _ = writeln!(out, "kind = \"trace\"\npoints = [{}]", pts.join(", "));
        }
    }
}

impl ScenarioSpec {
    /// Serializes the spec as canonical TOML: the exact format
    /// [`ScenarioSpec::from_toml_str`] parses back to an equal spec, and
    /// the format of the checked-in `scenarios/*.toml` files.
    #[must_use]
    pub fn to_toml(&self) -> String {
        let mut out = String::new();
        let w = &mut out;
        let _ = writeln!(
            w,
            "# EVOLVE declarative scenario (schema: EXPERIMENTS.md \u{a7} Authoring scenarios)."
        );
        let _ = writeln!(w, "name = {}", fmt_str(&self.name));
        let _ = writeln!(w, "description = {}", fmt_str(&self.description));
        let _ = writeln!(w, "horizon_secs = {}", fmt_secs(self.horizon));
        let _ = writeln!(w, "\n[cluster]\nnodes = {}", self.cluster.nodes);
        if let Some(nc) = &self.cluster.node_capacity {
            let _ = writeln!(w, "node_capacity = {}", fmt_vec4(nc));
        }
        if let Some(a) = &self.arbiter {
            let _ = writeln!(
                w,
                "\n[arbiter]\nheadroom_fraction = {}\nfloor_fraction = {}\nhysteresis = {}\n\
                 max_recovery_step = {}\ndemand_cap_ratio = {}",
                fmt_f64(a.headroom_fraction),
                fmt_f64(a.floor_fraction),
                fmt_f64(a.hysteresis),
                fmt_f64(a.max_recovery_step),
                fmt_f64(a.demand_cap_ratio)
            );
        }
        if let Some(p) = &self.probe {
            let _ = writeln!(
                w,
                "\n[probe]\ninitial = {}\nstep = {}\nmax = {}\nthreshold = {}",
                fmt_f64(p.initial),
                fmt_f64(p.step),
                fmt_f64(p.max),
                fmt_f64(p.threshold)
            );
            if let Some(r) = p.reference_rps {
                let _ = writeln!(w, "reference_rps = {}", fmt_f64(r));
            }
        }
        for s in &self.services {
            let _ = writeln!(w, "\n[[service]]");
            let _ = writeln!(w, "name = {}", fmt_str(&s.name));
            let _ = writeln!(w, "class = {}", fmt_str(&s.class));
            let _ = writeln!(w, "demand = {}", fmt_vec4(&s.demand));
            let _ = writeln!(w, "demand_cv = {}", fmt_f64(s.demand_cv));
            let _ = writeln!(w, "timeout_secs = {}", fmt_secs(s.timeout));
            emit_plo(w, &s.plo);
            let _ = writeln!(w, "alloc = {}", fmt_vec4(&s.alloc));
            let _ = writeln!(w, "replicas = {}", s.replicas);
            if s.base_memory_mib != 64.0 {
                let _ = writeln!(w, "base_memory_mib = {}", fmt_f64(s.base_memory_mib));
            }
            emit_priority(w, s.priority);
            emit_load(w, &s.load);
        }
        for b in &self.batch_jobs {
            let _ = writeln!(w, "\n[[batch]]");
            let _ = writeln!(w, "name = {}", fmt_str(&b.name));
            let _ = writeln!(w, "submit_secs = {}", fmt_f64(b.submit_at.as_secs_f64()));
            emit_plo(w, &b.plo);
            let _ = writeln!(w, "task_alloc = {}", fmt_vec4(&b.task_alloc));
            let _ = writeln!(w, "max_parallel = {}", b.max_parallel);
            emit_priority(w, b.priority);
            for st in &b.stages {
                let _ = writeln!(w, "\n[[batch.stage]]");
                let _ = writeln!(w, "tasks = {}", st.tasks);
                let _ = writeln!(w, "work = {}", fmt_vec4(&st.work));
                let _ = writeln!(w, "records = {}", st.records);
            }
        }
        for h in &self.hpc_jobs {
            let _ = writeln!(w, "\n[[hpc]]");
            let _ = writeln!(w, "name = {}", fmt_str(&h.name));
            let _ = writeln!(w, "submit_secs = {}", fmt_f64(h.submit_at.as_secs_f64()));
            let _ = writeln!(w, "gang = {}", h.gang);
            let _ = writeln!(w, "iterations = {}", h.iterations);
            let _ = writeln!(w, "work = {}", fmt_vec4(&h.work));
            let _ = writeln!(w, "rank_alloc = {}", fmt_vec4(&h.rank_alloc));
            let _ = writeln!(w, "deadline_secs = {}", fmt_secs(h.deadline));
            emit_priority(w, h.priority);
        }
        for fault in &self.faults {
            let _ = writeln!(w, "\n[[fault]]");
            match fault {
                FaultSpec::NodeCrash { node, at, downtime } => {
                    let _ = writeln!(w, "kind = \"node_crash\"");
                    let _ = writeln!(w, "at_secs = {}", fmt_f64(at.as_secs_f64()));
                    let _ = writeln!(w, "node = {node}");
                    if let Some(d) = downtime {
                        let _ = writeln!(w, "downtime_secs = {}", fmt_secs(*d));
                    }
                }
                FaultSpec::ScrapeBlackout { at, duration } => {
                    let _ = writeln!(w, "kind = \"scrape_blackout\"");
                    let _ = writeln!(w, "at_secs = {}", fmt_f64(at.as_secs_f64()));
                    let _ = writeln!(w, "duration_secs = {}", fmt_secs(*duration));
                }
                FaultSpec::ControlStall { at, duration } => {
                    let _ = writeln!(w, "kind = \"control_stall\"");
                    let _ = writeln!(w, "at_secs = {}", fmt_f64(at.as_secs_f64()));
                    let _ = writeln!(w, "duration_secs = {}", fmt_secs(*duration));
                }
                FaultSpec::ControllerCrash { at } => {
                    let _ = writeln!(w, "kind = \"controller_crash\"");
                    let _ = writeln!(w, "at_secs = {}", fmt_f64(at.as_secs_f64()));
                }
                FaultSpec::ActuationDrop { at, duration } => {
                    let _ = writeln!(w, "kind = \"actuation_drop\"");
                    let _ = writeln!(w, "at_secs = {}", fmt_f64(at.as_secs_f64()));
                    let _ = writeln!(w, "duration_secs = {}", fmt_secs(*duration));
                }
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Builtin scenario emitters
// ---------------------------------------------------------------------------

struct ClassDef {
    name: &'static str,
    demand: ResourceVec,
    cv: f64,
}

/// Canonical request classes (demand units: mcore·s CPU, MiB working
/// set, MB disk, MB net per request).
fn cpu_bound() -> ClassDef {
    ClassDef { name: "cpu-bound", demand: ResourceVec::new(20.0, 2.0, 0.01, 0.05), cv: 0.6 }
}

fn disk_bound() -> ClassDef {
    ClassDef { name: "disk-bound", demand: ResourceVec::new(5.0, 4.0, 2.0, 0.2), cv: 0.8 }
}

fn net_bound() -> ClassDef {
    ClassDef { name: "net-bound", demand: ResourceVec::new(5.0, 2.0, 0.05, 2.5), cv: 0.7 }
}

/// Compute-heavy requests (~100 ms on one core) used by the overload
/// scenario so a handful of nodes saturates at modest request rates.
fn cpu_heavy() -> ClassDef {
    ClassDef { name: "cpu-heavy", demand: ResourceVec::new(100.0, 8.0, 0.1, 0.2), cv: 0.5 }
}

fn mem_heavy() -> ClassDef {
    ClassDef { name: "mem-heavy", demand: ResourceVec::new(12.0, 48.0, 0.1, 0.1), cv: 0.5 }
}

/// Default initial per-replica allocation: deliberately modest — the
/// controllers must discover the right size.
fn default_alloc() -> ResourceVec {
    ResourceVec::new(1_000.0, 1_024.0, 50.0, 50.0)
}

/// What a cautious user writes into a static pod spec: CPU and memory
/// sized generously (~3× the mean — those are the dimensions dashboards
/// show and Kubernetes lets you request), while disk and network I/O sit
/// at small defaults — stock Kubernetes has no native I/O-bandwidth
/// requests at all, which is precisely the gap EVOLVE's multi-resource
/// controller fills. The result is the classic production profile:
/// over-provisioned where it does not matter, starved where it does.
fn provisioned_alloc() -> ResourceVec {
    ResourceVec::new(6_000.0, 12_288.0, 50.0, 50.0)
}

/// A two-replica service entry with a p99 latency PLO — the shape every
/// builtin service shares.
fn svc(
    name: &str,
    class: ClassDef,
    p99_ms: f64,
    alloc: ResourceVec,
    load: LoadSpec,
) -> ServiceEntry {
    ServiceEntry {
        name: name.to_string(),
        class: class.name.to_string(),
        demand: class.demand,
        demand_cv: class.cv,
        timeout: SimDuration::from_secs(10),
        plo: PloSpec::LatencyP99 { target_ms: p99_ms },
        alloc,
        replicas: 2,
        base_memory_mib: 64.0,
        priority: PriorityClass::Standard,
        load,
    }
}

fn batch_etl(scale: f64, submit: SimTime) -> BatchEntry {
    BatchEntry {
        name: "etl".to_string(),
        submit_at: submit,
        stages: vec![
            // Scan/transform: ~30 s of CPU and 20 s of disk per task at
            // the nominal executor size.
            StageEntry {
                tasks: (8.0 * scale).ceil() as u32,
                work: ResourceVec::new(60_000.0, 1_024.0, 2_000.0, 200.0),
                records: 1_000_000,
            },
            // Shuffle/aggregate: network-heavy.
            StageEntry {
                tasks: (4.0 * scale).ceil() as u32,
                work: ResourceVec::new(45_000.0, 2_048.0, 500.0, 3_000.0),
                records: 500_000,
            },
        ],
        plo: PloSpec::Deadline { deadline: SimDuration::from_mins(5) },
        task_alloc: ResourceVec::new(2_000.0, 2_048.0, 100.0, 100.0),
        max_parallel: 8,
        priority: PriorityClass::Standard,
    }
}

fn batch_analytics(scale: f64, submit: SimTime) -> BatchEntry {
    BatchEntry {
        name: "analytics".to_string(),
        submit_at: submit,
        stages: vec![StageEntry {
            tasks: (12.0 * scale).ceil() as u32,
            work: ResourceVec::new(120_000.0, 3_072.0, 1_500.0, 500.0),
            records: 2_000_000,
        }],
        plo: PloSpec::Deadline { deadline: SimDuration::from_mins(8) },
        task_alloc: ResourceVec::new(2_000.0, 3_584.0, 80.0, 60.0),
        max_parallel: 12,
        priority: PriorityClass::Standard,
    }
}

fn hpc_solver(gang: u32, submit: SimTime) -> HpcEntry {
    HpcEntry {
        name: "solver".to_string(),
        submit_at: submit,
        gang,
        iterations: 120,
        // ~2 s of compute and 1 s of halo exchange per iteration at the
        // nominal rank size.
        work: ResourceVec::new(4_000.0, 1_024.0, 10.0, 100.0),
        rank_alloc: ResourceVec::new(2_000.0, 2_048.0, 20.0, 100.0),
        deadline: SimDuration::from_mins(10),
        priority: PriorityClass::Standard,
    }
}

fn base_spec(
    name: impl Into<String>,
    description: &str,
    horizon: SimDuration,
    nodes: usize,
) -> ScenarioSpec {
    ScenarioSpec {
        name: name.into(),
        description: description.to_string(),
        horizon,
        cluster: ClusterSpec { nodes, node_capacity: None },
        services: Vec::new(),
        batch_jobs: Vec::new(),
        hpc_jobs: Vec::new(),
        arbiter: None,
        faults: Vec::new(),
        probe: None,
    }
}

impl ScenarioSpec {
    /// The T1/T2/F4 headline mix (see [`Scenario::headline`]); canonical
    /// cluster: 20 nodes.
    ///
    /// # Panics
    ///
    /// Panics when `scale` is not positive.
    #[must_use]
    pub fn headline(scale: f64) -> ScenarioSpec {
        assert!(scale > 0.0, "scale must be positive");
        let day = SimDuration::from_mins(20);
        let mut spec = base_spec(
            "headline",
            "mixed cloud/big-data/HPC consolidation (T1/T2/F4)",
            SimDuration::from_mins(20),
            20,
        );
        spec.services = vec![
            svc(
                "frontend",
                cpu_bound(),
                100.0,
                provisioned_alloc(),
                LoadSpec::Diurnal { base: 200.0 * scale, amplitude: 0.7, period: day, phase: 0.0 },
            ),
            svc(
                "search",
                cpu_bound(),
                100.0,
                provisioned_alloc(),
                LoadSpec::Diurnal { base: 80.0 * scale, amplitude: 0.6, period: day, phase: 1.2 },
            ),
            svc(
                "ingest",
                disk_bound(),
                100.0,
                provisioned_alloc(),
                LoadSpec::Mmpp {
                    low: 25.0 * scale,
                    high: 90.0 * scale,
                    mean_dwell: SimDuration::from_secs(90),
                },
            ),
            svc(
                "media",
                net_bound(),
                100.0,
                provisioned_alloc(),
                LoadSpec::Diurnal { base: 70.0 * scale, amplitude: 0.8, period: day, phase: 2.4 },
            ),
            svc(
                "session",
                mem_heavy(),
                100.0,
                provisioned_alloc(),
                LoadSpec::Mmpp {
                    low: 20.0 * scale,
                    high: 60.0 * scale,
                    mean_dwell: SimDuration::from_secs(120),
                },
            ),
            svc(
                "checkout",
                cpu_bound(),
                100.0,
                provisioned_alloc(),
                LoadSpec::FlashCrowd {
                    base: 30.0 * scale,
                    spike_factor: 4.0,
                    start: SimTime::from_secs(600),
                    duration: SimDuration::from_secs(180),
                },
            ),
        ];
        spec.batch_jobs = vec![
            batch_etl(scale, SimTime::from_secs(120)),
            batch_analytics(scale, SimTime::from_secs(400)),
            batch_etl(scale, SimTime::from_secs(800)),
        ];
        spec.hpc_jobs =
            vec![hpc_solver(4, SimTime::from_secs(200)), hpc_solver(6, SimTime::from_secs(700))];
        spec
    }

    /// The F1 single-service diurnal timeline (see
    /// [`Scenario::single_diurnal`]); canonical cluster: 6 nodes.
    #[must_use]
    pub fn single_diurnal() -> ScenarioSpec {
        let mut spec = base_spec(
            "single-diurnal",
            "one service, one compressed day (F1)",
            SimDuration::from_mins(15),
            6,
        );
        spec.services = vec![svc(
            "web",
            cpu_bound(),
            100.0,
            default_alloc(),
            LoadSpec::Diurnal {
                base: 150.0,
                amplitude: 0.8,
                period: SimDuration::from_mins(15),
                phase: 0.0,
            },
        )];
        spec
    }

    /// The F5 flash-crowd burst (see [`Scenario::flash_crowd`]);
    /// canonical cluster: 8 nodes.
    #[must_use]
    pub fn flash_crowd(spike_factor: f64) -> ScenarioSpec {
        let mut spec = base_spec(
            format!("flash-crowd-x{spike_factor:.0}"),
            "steady load with a sudden spike (F5)",
            SimDuration::from_mins(8),
            8,
        );
        spec.services = vec![svc(
            "store",
            cpu_bound(),
            100.0,
            default_alloc(),
            LoadSpec::FlashCrowd {
                base: 80.0,
                spike_factor,
                start: SimTime::from_secs(120),
                duration: SimDuration::from_secs(150),
            },
        )];
        spec
    }

    /// The F2 load step (see [`Scenario::step_response`]); canonical
    /// cluster: 8 nodes.
    ///
    /// # Panics
    ///
    /// Panics when `factor < 1`.
    #[must_use]
    pub fn step_response(factor: f64) -> ScenarioSpec {
        assert!(factor >= 1.0, "step factor must be at least 1");
        let base = 60.0;
        let mut spec = base_spec(
            format!("step-x{factor:.0}"),
            "load step for settling-time measurement (F2)",
            SimDuration::from_mins(10),
            8,
        );
        spec.services = vec![svc(
            "svc",
            cpu_bound(),
            100.0,
            default_alloc(),
            LoadSpec::Trace {
                points: vec![(SimTime::ZERO, base), (SimTime::from_secs(240), base * factor)],
            },
        )];
        spec
    }

    /// The F3 constant-offered-load sweep point (see
    /// [`Scenario::load_sweep`]); canonical cluster: 10 nodes.
    ///
    /// # Panics
    ///
    /// Panics when `offered` is not positive.
    #[must_use]
    pub fn load_sweep(offered: f64) -> ScenarioSpec {
        assert!(offered > 0.0, "offered load must be positive");
        let mut spec = base_spec(
            format!("sweep-{offered:.2}"),
            "constant offered load for the violation-vs-load sweep (F3)",
            SimDuration::from_mins(6),
            10,
        );
        spec.services = vec![
            svc(
                "api",
                cpu_bound(),
                100.0,
                default_alloc(),
                LoadSpec::Constant { rate: 200.0 * offered },
            ),
            svc(
                "feed",
                disk_bound(),
                120.0,
                default_alloc(),
                LoadSpec::Constant { rate: 100.0 * offered },
            ),
        ];
        spec
    }

    /// The T5 bottleneck-rotation ablation mix (see
    /// [`Scenario::bottleneck_rotation`]); canonical cluster: 12 nodes.
    #[must_use]
    pub fn bottleneck_rotation() -> ScenarioSpec {
        let mut spec = base_spec(
            "bottleneck-rotation",
            "each service binds on a different resource (T5)",
            SimDuration::from_mins(10),
            12,
        );
        spec.services = [
            ("cpu-svc", cpu_bound()),
            ("disk-svc", disk_bound()),
            ("net-svc", net_bound()),
            ("mem-svc", mem_heavy()),
        ]
        .into_iter()
        .map(|(name, class)| {
            svc(
                name,
                class,
                120.0,
                default_alloc(),
                LoadSpec::Mmpp { low: 30.0, high: 80.0, mean_dwell: SimDuration::from_secs(60) },
            )
        })
        .collect();
        spec
    }

    /// The saturated overload mix (see [`Scenario::overload`]); canonical
    /// cluster: 4 nodes, with the capacity arbiter enabled and a
    /// `[probe]` ramp matching `capacity_probe`'s defaults.
    ///
    /// # Panics
    ///
    /// Panics when `offered` is not positive.
    #[must_use]
    pub fn overload(offered: f64) -> ScenarioSpec {
        assert!(offered > 0.0, "offered load must be positive");
        let mut spec = base_spec(
            format!("overload-{offered:.2}"),
            "priority-tiered services pushing demand past capacity",
            SimDuration::from_mins(8),
            4,
        );
        let mut checkout = svc(
            "checkout",
            cpu_heavy(),
            150.0,
            default_alloc(),
            LoadSpec::Constant { rate: 120.0 * offered },
        );
        checkout.priority = PriorityClass::Critical;
        let mut scavenge = svc(
            "scavenge",
            cpu_heavy(),
            300.0,
            default_alloc(),
            LoadSpec::Constant { rate: 120.0 * offered },
        );
        scavenge.priority = PriorityClass::Preemptible;
        spec.services = vec![
            checkout,
            svc(
                "api",
                cpu_heavy(),
                150.0,
                default_alloc(),
                LoadSpec::Constant { rate: 120.0 * offered },
            ),
            svc(
                "feed",
                disk_bound(),
                150.0,
                default_alloc(),
                LoadSpec::Constant { rate: 80.0 * offered },
            ),
            scavenge,
        ];
        let mut analytics = batch_analytics(1.0, SimTime::from_secs(60));
        analytics.priority = PriorityClass::Preemptible;
        spec.batch_jobs = vec![analytics, batch_etl(1.0, SimTime::from_secs(120))];
        spec.arbiter = Some(ArbiterSpec::default());
        spec.probe = Some(ProbeSpec {
            initial: 0.6,
            step: 0.2,
            max: 2.2,
            threshold: 0.10,
            reference_rps: None,
        });
        spec
    }

    /// The T8 slot-packed scheduler-stress mix (see
    /// [`Scenario::cluster_scale`] for the sizing rationale).
    ///
    /// # Panics
    ///
    /// Panics when `nodes` or `apps` is zero.
    #[must_use]
    pub fn cluster_scale(nodes: usize, apps: usize, horizon: SimDuration) -> ScenarioSpec {
        assert!(nodes > 0, "need at least one node");
        assert!(apps > 0, "need at least one service app");
        let slots = 12 * nodes;
        let service_pods = (slots * 2).div_ceil(5); // ~40% of slots
        let per_app = service_pods.div_ceil(apps).max(1) as u32;
        let pod_alloc = ResourceVec::new(1_200.0, 4_800.0, 30.0, 80.0);
        let mut spec = base_spec(
            format!("cluster-scale-{nodes}n-{apps}a"),
            "slot-packed nodes with an oversubscribed batch backlog (T8)",
            horizon,
            nodes,
        );
        spec.services = (0..apps)
            .map(|i| {
                let mut e = svc(
                    &format!("svc-{i}"),
                    cpu_bound(),
                    250.0,
                    pod_alloc,
                    LoadSpec::Constant { rate: 2.0 },
                );
                e.replicas = per_app;
                e
            })
            .collect();
        let tasks_per_stage = (nodes * 50).max(1) as u32;
        let max_parallel = (nodes * 2).max(1) as u32;
        spec.batch_jobs = (0..4u64)
            .map(|j| BatchEntry {
                name: format!("scan-{j}"),
                submit_at: SimTime::from_secs(10 + 5 * j),
                stages: vec![StageEntry {
                    tasks: tasks_per_stage,
                    work: ResourceVec::new(360_000.0, 2_048.0, 100.0, 50.0),
                    records: 100_000,
                }],
                plo: PloSpec::Deadline { deadline: SimDuration::from_mins(60) },
                task_alloc: pod_alloc,
                max_parallel,
                priority: PriorityClass::Preemptible,
            })
            .collect();
        spec
    }

    /// The F6 interference mix (see [`Scenario::interference`]);
    /// canonical cluster: 10 nodes.
    #[must_use]
    pub fn interference() -> ScenarioSpec {
        let mut spec = base_spec(
            "interference",
            "batch/HPC harvesting slack under latency PLOs (F6)",
            SimDuration::from_mins(12),
            10,
        );
        spec.services = vec![
            svc(
                "frontend",
                cpu_bound(),
                100.0,
                default_alloc(),
                LoadSpec::Diurnal {
                    base: 100.0,
                    amplitude: 0.7,
                    period: SimDuration::from_mins(10),
                    phase: 0.0,
                },
            ),
            svc(
                "api",
                net_bound(),
                100.0,
                default_alloc(),
                LoadSpec::Mmpp { low: 40.0, high: 100.0, mean_dwell: SimDuration::from_secs(75) },
            ),
        ];
        spec.batch_jobs = vec![
            batch_analytics(2.0, SimTime::from_secs(60)),
            batch_etl(2.0, SimTime::from_secs(90)),
        ];
        spec.hpc_jobs = vec![hpc_solver(8, SimTime::from_secs(120))];
        spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_registry_covers_all_names() {
        for name in BUILTIN_NAMES {
            let spec = ScenarioSpec::builtin(name).unwrap();
            spec.validate().unwrap();
            assert!(!spec.build().mix.is_empty(), "{name} builds empty");
        }
        assert!(matches!(
            ScenarioSpec::builtin("nope"),
            Err(ScenarioError::UnknownScenario { .. })
        ));
    }

    #[test]
    fn overload_spec_carries_arbiter_and_probe() {
        let spec = ScenarioSpec::overload(1.0);
        assert!(spec.arbiter.is_some());
        assert!(spec.probe.is_some());
        assert!((spec.offered_rps() - 440.0).abs() < 1e-9);
    }

    #[test]
    fn scaled_loads_multiplies_service_rates_only() {
        let base = ScenarioSpec::overload(1.0);
        let scaled = base.scaled_loads(1.5);
        assert!((scaled.offered_rps() - 660.0).abs() < 1e-9);
        assert_eq!(scaled.name, base.name);
        assert_eq!(scaled.batch_jobs, base.batch_jobs);
    }

    #[test]
    fn round_trip_preserves_spec_equality() {
        for name in BUILTIN_NAMES {
            let spec = ScenarioSpec::builtin(name).unwrap();
            let parsed = ScenarioSpec::from_toml_str(&spec.to_toml())
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(parsed, spec, "{name} does not round-trip");
        }
    }

    #[test]
    fn error_display_is_informative() {
        let errs = [
            ScenarioError::Io { path: "x.toml".into(), detail: "gone".into() },
            ScenarioError::Syntax { line: 3, detail: "bad".into() },
            ScenarioError::UnknownField {
                line: 4,
                table: "service[0]".into(),
                field: "bogus".into(),
            },
            ScenarioError::MissingField { table: "scenario".into(), field: "name".into() },
            ScenarioError::InvalidValue {
                line: 5,
                field: "cluster.nodes".into(),
                detail: "no".into(),
            },
            ScenarioError::Infeasible { field: "service[0].demand".into(), detail: "zero".into() },
            ScenarioError::UnknownScenario { name: "ghost".into() },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
