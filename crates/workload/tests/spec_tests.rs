//! Integration tests for the declarative scenario layer: the checked-in
//! `scenarios/*.toml` files are pinned byte-identical to what the builtin
//! spec emitters produce, the parser round-trips them, and malformed
//! input fails with the right typed [`ScenarioError`] — never a panic.
//!
//! Regenerate the checked-in files after changing a builtin emitter:
//!
//! ```text
//! EVOLVE_BLESS_SCENARIOS=1 cargo test -p evolve-workload --test spec_tests
//! ```

use std::path::PathBuf;

use evolve_workload::{ScenarioError, ScenarioSpec, BUILTIN_NAMES};

fn scenarios_dir() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../scenarios"))
}

fn blessing() -> bool {
    std::env::var("EVOLVE_BLESS_SCENARIOS").is_ok_and(|v| !v.trim().is_empty() && v != "0")
}

/// Every builtin spec has a checked-in TOML file whose bytes equal what
/// `to_toml` emits today. With `EVOLVE_BLESS_SCENARIOS=1` the files are
/// (re)written instead of compared.
#[test]
fn checked_in_scenarios_are_blessed_builtin_emissions() {
    let dir = scenarios_dir();
    if blessing() {
        std::fs::create_dir_all(&dir).expect("create scenarios/");
    }
    for name in BUILTIN_NAMES {
        let spec = ScenarioSpec::builtin(name).expect("builtin");
        let emitted = spec.to_toml();
        let path = dir.join(format!("{name}.toml"));
        if blessing() {
            std::fs::write(&path, &emitted).expect("write scenario file");
            continue;
        }
        let on_disk = std::fs::read_to_string(&path).unwrap_or_else(|err| {
            panic!(
                "missing {} ({err}) — run EVOLVE_BLESS_SCENARIOS=1 cargo test -p \
                 evolve-workload --test spec_tests",
                path.display()
            )
        });
        assert_eq!(
            on_disk,
            emitted,
            "{} drifted from the builtin emitter — re-bless or fix the emitter",
            path.display()
        );
    }
}

/// Parsing a checked-in file reproduces the builtin spec exactly, and the
/// parsed spec builds the same scenario the constructor does.
#[test]
fn checked_in_scenarios_parse_back_to_the_builtin_spec() {
    if blessing() {
        return;
    }
    for name in BUILTIN_NAMES {
        let spec = ScenarioSpec::builtin(name).expect("builtin");
        let path = scenarios_dir().join(format!("{name}.toml"));
        let parsed = ScenarioSpec::from_file(&path)
            .unwrap_or_else(|err| panic!("{}: {err}", path.display()));
        assert_eq!(parsed, spec, "{name}: file spec != builtin spec");
        let a = parsed.build();
        let b = spec.build();
        assert_eq!(a.name, b.name);
        assert_eq!(a.horizon, b.horizon);
        assert_eq!(a.mix.len(), b.mix.len());
    }
}

#[test]
fn syntax_errors_carry_the_line() {
    let err = ScenarioSpec::from_toml_str("name = \"x\"\n= broken\n").unwrap_err();
    match err {
        ScenarioError::Syntax { line, .. } => assert_eq!(line, 2),
        other => panic!("expected Syntax, got {other}"),
    }
}

#[test]
fn unknown_fields_are_rejected_with_table_context() {
    let toml = "name = \"x\"\ndescription = \"d\"\nhorizon_secs = 60\nbogus = 1\n";
    match ScenarioSpec::from_toml_str(toml).unwrap_err() {
        ScenarioError::UnknownField { table, field, .. } => {
            assert_eq!(table, "scenario");
            assert_eq!(field, "bogus");
        }
        other => panic!("expected UnknownField, got {other}"),
    }
}

#[test]
fn missing_required_fields_are_typed() {
    // No `name`.
    let toml = "description = \"d\"\nhorizon_secs = 60\n";
    match ScenarioSpec::from_toml_str(toml).unwrap_err() {
        ScenarioError::MissingField { table, field } => {
            assert_eq!(table, "scenario");
            assert_eq!(field, "name");
        }
        other => panic!("expected MissingField, got {other}"),
    }
}

#[test]
fn invalid_values_are_typed() {
    let toml = "name = \"x\"\ndescription = \"d\"\nhorizon_secs = -5\n";
    match ScenarioSpec::from_toml_str(toml).unwrap_err() {
        ScenarioError::InvalidValue { field, .. } => assert_eq!(field, "scenario.horizon_secs"),
        other => panic!("expected InvalidValue, got {other}"),
    }
}

#[test]
fn empty_workload_is_infeasible_not_a_panic() {
    // Structurally fine, but declares nothing to run.
    let toml = "name = \"x\"\ndescription = \"d\"\nhorizon_secs = 60\n\n[cluster]\nnodes = 2\n";
    match ScenarioSpec::from_toml_str(toml).unwrap_err() {
        ScenarioError::Infeasible { field, .. } => assert_eq!(field, "scenario"),
        other => panic!("expected Infeasible, got {other}"),
    }
}

#[test]
fn oversized_allocation_is_infeasible() {
    // A valid builtin, then one service's per-pod allocation inflated
    // past any node: the semantic check must name the offending field.
    let mut spec = ScenarioSpec::builtin("single_diurnal").expect("builtin");
    spec.services[0].alloc = evolve_types::ResourceVec::new(1e9, 1e9, 1e9, 1e9);
    match spec.validate().unwrap_err() {
        ScenarioError::Infeasible { field, .. } => assert!(field.contains("alloc"), "{field}"),
        other => panic!("expected Infeasible, got {other}"),
    }
}

#[test]
fn unknown_builtin_name_is_typed() {
    match ScenarioSpec::builtin("nope").unwrap_err() {
        ScenarioError::UnknownScenario { name } => assert_eq!(name, "nope"),
        other => panic!("expected UnknownScenario, got {other}"),
    }
}

/// Truncating a valid document at every character boundary must produce
/// `Err`, never a panic (the parser sees arbitrary prefixes from editors
/// and partial writes).
#[test]
fn truncated_documents_never_panic() {
    let full = ScenarioSpec::headline(1.0).to_toml();
    for end in 0..full.len() {
        if !full.is_char_boundary(end) {
            continue;
        }
        // Any prefix is allowed to parse (a shorter valid doc) or fail
        // with a typed error; what it must not do is panic.
        let _ = ScenarioSpec::from_toml_str(&full[..end]);
    }
}

/// `from_file` on a missing path reports `Io` with the path embedded.
#[test]
fn missing_file_is_an_io_error() {
    match ScenarioSpec::from_file("/nonexistent/evolve/spec.toml").unwrap_err() {
        ScenarioError::Io { path, .. } => assert!(path.contains("nonexistent")),
        other => panic!("expected Io, got {other}"),
    }
}
