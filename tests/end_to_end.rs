//! Cross-crate integration tests: full experiment runs (workload →
//! simulator → manager → scheduler) on small configurations.

use evolve::prelude::*;
use evolve::workload::{LoadSpec, RequestClass, ServiceSpec, WorkloadMix};

/// A small scenario that finishes fast in debug builds.
fn tiny_scenario(rate: f64, horizon_secs: u64) -> Scenario {
    let class = RequestClass::new(
        "rq",
        ResourceVec::new(20.0, 2.0, 0.2, 0.2),
        0.5,
        SimDuration::from_secs(10),
    );
    let mix = WorkloadMix::new().with_service(
        ServiceSpec::new(
            "svc",
            PloSpec::LatencyP99 { target_ms: 100.0 },
            class,
            ResourceVec::new(1_000.0, 1_024.0, 25.0, 25.0),
        )
        .with_initial_replicas(2),
        LoadSpec::Ramp {
            from: rate * 0.3,
            to: rate,
            duration: SimDuration::from_secs(horizon_secs / 2),
        },
    );
    Scenario {
        name: "tiny-ramp".into(),
        description: "integration-test ramp".into(),
        mix,
        horizon: SimDuration::from_secs(horizon_secs),
    }
}

fn run(manager: ManagerKind, seed: u64) -> RunOutcome {
    ExperimentRunner::new(
        RunConfig::builder(tiny_scenario(120.0, 240), manager).nodes(4).seed(seed).build(),
    )
    .run()
}

#[test]
fn evolve_run_completes_and_serves_requests() {
    let outcome = run(ManagerKind::Evolve, 1);
    assert_eq!(outcome.manager, "evolve");
    let svc = &outcome.apps[0];
    assert!(svc.completions > 5_000, "completions {}", svc.completions);
    assert!(svc.windows > 20, "windows {}", svc.windows);
    assert!(outcome.bindings >= 2, "bindings {}", outcome.bindings);
    assert!(outcome.events > 10_000);
}

#[test]
fn evolve_violates_less_than_static_under_ramp() {
    // The static request (1000 mcore) saturates at ~50 rps with 20 mcore·s
    // demands; the ramp ends at 120 rps across 2 replicas, i.e. just past
    // saturation. EVOLVE must adapt; stock Kubernetes must suffer.
    let evolve = run(ManagerKind::Evolve, 2);
    let kube = run(ManagerKind::KubeStatic, 2);
    let ev = evolve.apps[0].violation_rate();
    let kv = kube.apps[0].violation_rate();
    assert!(ev < kv || (ev == 0.0 && kv == 0.0), "evolve rate {ev} should beat static rate {kv}");
    assert!(kv > 0.2, "static baseline should be violating under the ramp, got {kv}");
    assert!(ev < 0.5 * kv, "expected a large gap: evolve {ev} vs static {kv}");
}

#[test]
fn evolve_uses_less_allocation_than_overprovisioned_static() {
    // Over-provision the static service 8×; EVOLVE should deliver the PLO
    // with a much smaller time-averaged reservation.
    let class = RequestClass::new(
        "rq",
        ResourceVec::new(20.0, 2.0, 0.2, 0.2),
        0.5,
        SimDuration::from_secs(10),
    );
    let build = |alloc: ResourceVec| {
        let mix = WorkloadMix::new().with_service(
            ServiceSpec::new("svc", PloSpec::LatencyP99 { target_ms: 100.0 }, class.clone(), alloc)
                .with_initial_replicas(4),
            LoadSpec::Constant { rate: 40.0 },
        );
        Scenario {
            name: "overprov".into(),
            description: String::new(),
            mix,
            horizon: SimDuration::from_secs(240),
        }
    };
    let kube = ExperimentRunner::new(
        RunConfig::builder(
            build(ResourceVec::new(8_000.0, 8_192.0, 200.0, 200.0)),
            ManagerKind::KubeStatic,
        )
        .nodes(4)
        .seed(3)
        .build(),
    )
    .run();
    let evolve = ExperimentRunner::new(
        RunConfig::builder(
            build(ResourceVec::new(8_000.0, 8_192.0, 200.0, 200.0)),
            ManagerKind::Evolve,
        )
        .nodes(4)
        .seed(3)
        .build(),
    )
    .run();
    assert!(
        evolve.utilization.mean_allocated() < 0.75 * kube.utilization.mean_allocated(),
        "evolve allocated {:.3} vs static {:.3}",
        evolve.utilization.mean_allocated(),
        kube.utilization.mean_allocated()
    );
    // The reservation EVOLVE does hold is far better used — this is the
    // "2× utilization" headline claim, measured as used/allocated CPU.
    use evolve::types::Resource;
    let eff_evolve = evolve.utilization.efficiency[Resource::Cpu];
    let eff_kube = kube.utilization.efficiency[Resource::Cpu];
    assert!(
        eff_evolve > 2.0 * eff_kube,
        "cpu efficiency: evolve {eff_evolve:.3} vs static {eff_kube:.3}"
    );
    // And still (almost always) meets the PLO.
    assert!(
        evolve.apps[0].violation_rate() < 0.2,
        "violation rate {:.3}",
        evolve.apps[0].violation_rate()
    );
}

#[test]
fn runs_are_deterministic_per_seed() {
    let a = run(ManagerKind::Evolve, 9);
    let b = run(ManagerKind::Evolve, 9);
    assert_eq!(a.apps[0].completions, b.apps[0].completions);
    assert_eq!(a.apps[0].violations, b.apps[0].violations);
    assert_eq!(a.bindings, b.bindings);
    let c = run(ManagerKind::Evolve, 10);
    assert_ne!(a.apps[0].completions, c.apps[0].completions);
}

#[test]
fn headline_mix_runs_under_evolve() {
    // Shrink the headline scenario so this test stays debug-friendly.
    let mut scenario = Scenario::headline(0.3);
    scenario.horizon = SimDuration::from_secs(300);
    let outcome = ExperimentRunner::new(
        RunConfig::builder(scenario, ManagerKind::Evolve).nodes(12).seed(4).build(),
    )
    .run();
    assert_eq!(outcome.apps.len(), 11, "6 services + 3 batch + 2 hpc");
    // Every service saw traffic.
    for app in outcome.apps.iter().take(6) {
        assert!(app.windows > 0, "{} never evaluated", app.name);
    }
    // Some batch/HPC work got scheduled alongside.
    assert!(outcome.bindings > 10);
}

#[test]
fn hpa_and_vpa_baselines_run() {
    for manager in [ManagerKind::Hpa { target_utilization: 0.6 }, ManagerKind::Vpa { margin: 0.3 }]
    {
        let outcome = run(manager.clone(), 5);
        assert!(outcome.apps[0].completions > 1_000, "{:?}", manager);
    }
}
