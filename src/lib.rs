//! # EVOLVE — converged Big-Data / HPC / Cloud resource management
//!
//! A from-scratch Rust reproduction of the EVOLVE platform (DATE 2022):
//! performance-level objectives instead of resource requests, a
//! **multi-resource adaptive PID controller** per application, a
//! Kubernetes-style scheduler with priority preemption and gang
//! scheduling, and a discrete-event cluster simulator standing in for the
//! paper's real cluster (see `DESIGN.md` for the substitution map).
//!
//! This crate is a facade: it re-exports the workspace crates under one
//! roof so applications depend on a single `evolve` crate.
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`types`] | `evolve-types` | time, resources, ids |
//! | [`telemetry`] | `evolve-telemetry` | series, filters, quantiles, PLO tracking |
//! | [`control`] | `evolve-control` | PID, adaptive tuning, MIMO control, models |
//! | [`workload`] | `evolve-workload` | arrival processes, demands, scenarios |
//! | [`sim`] | `evolve-sim` | the cluster simulator |
//! | [`scheduler`] | `evolve-scheduler` | filter/score framework, preemption, gangs |
//! | [`core`] | `evolve-core` | policies, manager, experiment runner |
//!
//! # Quickstart
//!
//! ```no_run
//! use evolve::prelude::*;
//!
//! let outcome = ExperimentRunner::new(
//!     RunConfig::builder(Scenario::single_diurnal(), ManagerKind::Evolve).nodes(6).build(),
//! )
//! .run();
//! println!(
//!     "{}: violation rate {:.3}, mean allocated share {:.2}",
//!     outcome.manager,
//!     outcome.total_violation_rate(),
//!     outcome.utilization.mean_allocated(),
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use evolve_control as control;
pub use evolve_core as core;
pub use evolve_scheduler as scheduler;
pub use evolve_sim as sim;
pub use evolve_telemetry as telemetry;
pub use evolve_types as types;
pub use evolve_workload as workload;

/// The one-import surface for experiments: every cross-crate type a bench
/// binary, example or integration test typically needs, re-exported flat.
///
/// ```no_run
/// use evolve::prelude::*;
///
/// let rep = Harness::new().run_seeds(
///     &RunConfig::builder(Scenario::headline(0.5), ManagerKind::Evolve)
///         .nodes(8)
///         .record_series(false)
///         .build(),
///     &[42, 43, 44],
/// );
/// println!("violation rate {:.3}", rep.violation_rate().mean);
/// ```
pub mod prelude {
    pub use evolve_control::ArbiterConfig;
    pub use evolve_core::{
        arbiter_from_spec, faults_from_spec, write_csv, ExperimentRunner, Harness, ManagerKind,
        RecoveryStrategy, ReplicatedOutcome, RunConfig, RunConfigBuilder, RunOutcome, RunPerf,
        SchedulerProfile, Summary, Table,
    };
    pub use evolve_sim::{
        ChaosOracle, FaultEvent, FaultKind, FaultPlan, NodeShape, OracleReport, OracleViolation,
        Reproducer, StochasticFaults,
    };
    pub use evolve_telemetry::trace::{
        ActuationOutcome, ControlExplain, ControlTrace, FaultTrace, SchedOutcome, SchedTrace,
        SpanKind, SpanTrace, TraceConfig, TraceEvent, TraceRing, TraceSignal,
    };
    pub use evolve_telemetry::{MetricKey, MetricRegistry};
    pub use evolve_types::{
        AppId, JobId, NodeId, PodId, PriorityClass, Resource, ResourceVec, SimDuration, SimTime,
    };
    pub use evolve_workload::{
        PloSpec, Scenario, ScenarioError, ScenarioSpec, WorldClass, BUILTIN_NAMES,
    };
}
