//! # EVOLVE — converged Big-Data / HPC / Cloud resource management
//!
//! A from-scratch Rust reproduction of the EVOLVE platform (DATE 2022):
//! performance-level objectives instead of resource requests, a
//! **multi-resource adaptive PID controller** per application, a
//! Kubernetes-style scheduler with priority preemption and gang
//! scheduling, and a discrete-event cluster simulator standing in for the
//! paper's real cluster (see `DESIGN.md` for the substitution map).
//!
//! This crate is a facade: it re-exports the workspace crates under one
//! roof so applications depend on a single `evolve` crate.
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`types`] | `evolve-types` | time, resources, ids |
//! | [`telemetry`] | `evolve-telemetry` | series, filters, quantiles, PLO tracking |
//! | [`control`] | `evolve-control` | PID, adaptive tuning, MIMO control, models |
//! | [`workload`] | `evolve-workload` | arrival processes, demands, scenarios |
//! | [`sim`] | `evolve-sim` | the cluster simulator |
//! | [`scheduler`] | `evolve-scheduler` | filter/score framework, preemption, gangs |
//! | [`core`] | `evolve-core` | policies, manager, experiment runner |
//!
//! # Quickstart
//!
//! ```no_run
//! use evolve::core::{ExperimentRunner, ManagerKind, RunConfig};
//! use evolve::workload::Scenario;
//!
//! let outcome = ExperimentRunner::new(
//!     RunConfig::new(Scenario::single_diurnal(), ManagerKind::Evolve).with_nodes(6),
//! )
//! .run();
//! println!(
//!     "{}: violation rate {:.3}, mean allocated share {:.2}",
//!     outcome.manager,
//!     outcome.total_violation_rate(),
//!     outcome.utilization.mean_allocated(),
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use evolve_control as control;
pub use evolve_core as core;
pub use evolve_scheduler as scheduler;
pub use evolve_sim as sim;
pub use evolve_telemetry as telemetry;
pub use evolve_types as types;
pub use evolve_workload as workload;
